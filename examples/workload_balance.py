"""Workload division on a skewed graph: row vs nnz vs merge split.

Reproduces the paper's Fig. 6 discussion: on power-law matrices,
row-split leaves some threads idle while one drowns; nnz-split and
merge-split (Merrill-Garland) even it out, and dynamic row dispatching
(Listing 1) fixes row-split at run time.

Run:  python examples/workload_balance.py
"""

import numpy as np

from repro import merge_split, nnz_split, row_split
from repro.core.runner import run_jit
from repro.datasets import load

THREADS = 8


def describe(name: str, ranges, matrix) -> None:
    nnz_per = [int(matrix.row_ptr[r1] - matrix.row_ptr[r0])
               for r0, r1 in ranges]
    total = max(1, sum(nnz_per))
    worst = max(nnz_per)
    print(f"  {name:12s} per-thread nnz: {nnz_per}")
    print(f"  {name:12s} imbalance: worst thread holds "
          f"{100 * worst * len(nnz_per) / total / 100:.2f}x its fair share")


def main() -> None:
    matrix = load("GAP-twitter")  # heavy-tailed social twin
    print(f"matrix: {matrix}")
    print(f"row-length gini: {matrix.gini_row_imbalance():.2f} "
          f"(0 = uniform, 1 = one row owns everything)\n")

    print("static partitions:")
    describe("row-split", row_split(matrix, THREADS), matrix)
    describe("nnz-split", nnz_split(matrix, THREADS), matrix)
    describe("merge-split", merge_split(matrix, THREADS), matrix)

    rng = np.random.default_rng(0)
    x = rng.random((matrix.ncols, 16), dtype=np.float32).astype(np.float32)

    print("\nmodeled execution (simulated machine, 8 threads):")
    rows = []
    for label, kwargs in [
        ("row (static)", dict(split="row", dynamic=False)),
        ("row (dynamic)", dict(split="row", dynamic=True, batch=16)),
        ("nnz", dict(split="nnz")),
        ("merge", dict(split="merge")),
    ]:
        result = run_jit(matrix, x, threads=THREADS, timing=True, **kwargs)
        slowest = max(c.cycles for c in result.per_thread)
        busiest = max(c.instructions for c in result.per_thread)
        average = (sum(c.instructions for c in result.per_thread)
                   / len(result.per_thread))
        rows.append((label, result.counters.cycles, busiest / max(1, average)))
        print(f"  {label:14s} cycles={result.counters.cycles:12,.0f}  "
              f"slowest thread={slowest:12,.0f}  "
              f"insn imbalance={busiest / max(1, average):.2f}x")

    best = min(rows, key=lambda r: r[1])
    print(f"\nbest strategy on this matrix: {best[0]}")


if __name__ == "__main__":
    main()
