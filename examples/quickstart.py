"""Quickstart: multiply, profile, and compare against an AOT baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro import CsrMatrix, JitSpMM, spmm_reference


def main() -> None:
    rng = np.random.default_rng(42)

    # Build a sparse matrix (20% fill) and a tall-skinny dense operand --
    # the GNN-style workload the paper targets (n >> d, §II-A).
    dense = np.where(rng.random((400, 400)) < 0.05,
                     rng.standard_normal((400, 400)), 0.0)
    matrix = CsrMatrix.from_dense(dense.astype(np.float32), name="demo")
    x = rng.random((400, 16), dtype=np.float32).astype(np.float32)
    print(f"A = {matrix}")
    print(f"X = {x.shape[0]}x{x.shape[1]} dense\n")

    # 1. Fast path: compute Y = A @ X with the numpy execution backend.
    engine = JitSpMM(split="merge", threads=8)
    y = engine.multiply(matrix, x)
    assert np.allclose(y, spmm_reference(matrix, x), atol=1e-4)
    print(f"multiply(): Y = {y.shape[0]}x{y.shape[1]}, "
          f"||Y||_F = {np.linalg.norm(y):.3f}  (matches reference)\n")

    # 2. Profiled path: generate real x86 machine code specialized to this
    #    (A, X) pair and execute it on the simulated multi-core machine.
    result = engine.profile(matrix, x)
    counters = result.counters
    print("profile() on the simulated machine:")
    print(f"  generated code     : {result.code_bytes} bytes "
          f"({len(result.program.instructions)} instructions)")
    print(f"  codegen wall time  : {result.codegen_seconds * 1e3:.3f} ms")
    print(f"  instructions       : {counters.instructions:,}")
    print(f"  memory loads       : {counters.memory_loads:,}")
    print(f"  branches           : {counters.branches:,} "
          f"({counters.branch_misses:,} mispredicted)")
    print(f"  modeled time       : {result.modeled_seconds() * 1e3:.3f} ms "
          f"at 3.7 GHz\n")

    # 2b. Same profile, superblock-compiled simulator: the "sim-fused"
    #     backend applies the paper's own specialization trick to the
    #     simulator — identical results and event counters, several
    #     times the simulated instructions/sec (no cycle model).
    fused = engine.profile(matrix, x, backend="sim-fused")
    assert fused.counters.instructions == counters.instructions
    assert np.array_equal(fused.y, result.y)
    print(f"  sim-fused backend  : {fused.counters.instructions:,} "
          "instructions retired bit-identically via superblocks\n")

    # 3. Compare with the auto-vectorized AOT baseline on the same
    #    machine — any registered system runs through the same one-call
    #    pipeline (repro.available_systems() lists them all).
    baseline = repro.run(matrix, x, system="aot:icc-avx512", split="merge",
                         threads=8)
    speedup = baseline.counters.cycles / counters.cycles
    print(f"icc-avx512 baseline: {baseline.counters.instructions:,} "
          f"instructions, {baseline.counters.memory_loads:,} loads")
    print(f"JITSPMM speedup over auto-vectorization: {speedup:.2f}x\n")

    # 4. The staged pipeline: prepare once (codegen, cached), bind per
    #    problem, execute per request — the serving subsystem's shape.
    artifact = repro.get_system("jit").prepare(
        repro.ExecutionConfig(split="merge", threads=8,
                              cache=repro.KernelCache()))
    plan = artifact.bind(matrix, x)             # generates the kernel
    first = plan.execute()
    rerun = artifact.bind(matrix, x).execute()  # same shape: cache hit
    print(f"prepare/bind/execute: first bind cache_hit={first.cache_hit}, "
          f"re-bind cache_hit={rerun.cache_hit} "
          f"(codegen {rerun.codegen_seconds * 1e3:.3f} ms the second time)")


if __name__ == "__main__":
    main()
