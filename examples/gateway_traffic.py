"""Gateway demo: the serving stack behind a real socket.

Spawns a local :class:`~repro.serve.gateway.Gateway` — an asyncio
front end speaking the length-prefixed binary protocol, two worker
processes each running a private :class:`~repro.serve.SpmmService`,
and a shared-memory ring carrying the operands — then drives it the
way an application would, through :class:`GatewayClient`:

1. register matrices once (replicated to every worker over shm),
2. verify the networked path is bit-identical to an in-process
   service on the same operands,
3. replay a closed-loop burst from several client threads and report
   requests/sec,
4. show typed remote errors (an unknown handle raises the same
   ``ShapeError`` it would in-process) and quota backpressure
   (``GatewayOverloaded`` with a ``reason``, never silent queueing),
5. dump a slice of the combined gateway + per-worker Prometheus text.

Run:  python examples/gateway_traffic.py
"""

import multiprocessing
import threading
import time

import numpy as np

from repro import CsrMatrix
from repro.api import ExecutionConfig
from repro.errors import GatewayOverloaded, ShapeError
from repro.serve import SpmmService
from repro.serve.gateway import Gateway


def random_sparse(rng, nrows, ncols, density, name):
    mask = rng.random((nrows, ncols)) < density
    dense = np.where(mask, rng.standard_normal((nrows, ncols)), 0.0)
    return CsrMatrix.from_dense(dense.astype(np.float32), name=name)


def main() -> None:
    rng = np.random.default_rng(11)
    start_method = ("fork" if "fork" in
                    multiprocessing.get_all_start_methods() else "spawn")
    config = ExecutionConfig(split="auto", backend="native", threads=4,
                             workers=2, max_batch=8, flush_us=100.0,
                             max_inflight=64)
    gateway = Gateway(config, mp_start=start_method,
                      obs_label="demo-gateway").start()
    host, port = gateway.address
    print(f"gateway up at {host}:{port} "
          f"(workers: {gateway.worker_pids()}, start={start_method})\n")

    matrices = [random_sparse(rng, 400, 320, 0.03, "demo-400"),
                random_sparse(rng, 256, 256, 0.08, "demo-256")]
    client = gateway.connect()
    handles = [client.register(matrix) for matrix in matrices]

    # -- conformance: networked result is bit-identical to in-process --
    with SpmmService(threads=4, split="auto", backend="native") as local:
        local_handles = [local.register(matrix) for matrix in matrices]
        for matrix, handle, local_handle in zip(matrices, handles,
                                                local_handles):
            x = rng.random((matrix.ncols, 8), dtype=np.float32)
            over_the_wire = client.multiply(handle, x)
            in_process = local.multiply(local_handle, x)
            assert np.array_equal(over_the_wire, in_process)
    print("networked results are bit-identical to the in-process "
          "service on both matrices")

    # -- a closed-loop burst: one client (connection) per thread -------
    clients, requests = 4, 50
    operands = [rng.random((matrices[0].ncols, 8), dtype=np.float32)
                for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def closed_loop(x):
        with gateway.connect() as mine:
            barrier.wait()
            for _ in range(requests):
                mine.multiply(handles[0], x)

    threads = [threading.Thread(target=closed_loop, args=(x,))
               for x in operands]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    print(f"burst: {clients} clients x {requests} requests -> "
          f"{clients * requests / wall:,.0f} req/s over the socket\n")

    # -- typed errors survive the wire ---------------------------------
    try:
        client.multiply(999, np.ones((4, 2), dtype=np.float32))
    except ShapeError as error:
        print(f"unknown handle raises ShapeError, networked too: {error}")

    # -- backpressure: rejection, not buffering ------------------------
    # A one-in-flight gateway: pin its only admission token with a slow
    # simulated profile, then watch the next request bounce with a
    # typed, reasoned rejection.
    tiny = Gateway(ExecutionConfig(split="row", backend="native",
                                   threads=2, workers=1, max_inflight=1),
                   mp_start=start_method).start()
    try:
        with tiny.connect() as one, tiny.connect() as two:
            matrix = matrices[1]
            slow = one.register(matrix)
            x = rng.random((matrix.ncols, 8), dtype=np.float32)
            one.profile(slow, x, backend="sim")      # warm the kernel
            pinner = threading.Thread(
                target=lambda: one.profile(slow, x, backend="sim"))
            pinner.start()
            while tiny.inflight < 1:                 # wait for admission
                time.sleep(0.001)
            try:
                two.multiply(slow, x)
            except GatewayOverloaded as error:
                print(f"over the cap raises GatewayOverloaded"
                      f"(reason={error.reason!r}): {error}")
            pinner.join()
    finally:
        tiny.close()

    # -- chaos: a seeded fault plan, typed failure, full recovery ------
    # Kill a worker mid-traffic and drop the client's own connection,
    # deterministically.  A retrying client rides through both: the
    # gateway respawns the dead worker, the client reconnects and
    # retries (idempotent ops only), and every answer is still
    # bit-identical.  Requests also carry a deadline — an expired one
    # fails fast with DeadlineExceeded instead of queueing forever.
    from repro.errors import DeadlineExceeded
    from repro.faults import FaultPlan, FaultRule

    pids_before = set(gateway.worker_pids())
    gateway.set_fault_plan(FaultPlan(seed=7, rules=(
        FaultRule("worker.crash", after=1, max_fires=1),
        FaultRule("conn.drop", after=2, max_fires=1),
    )))
    x = rng.random((matrices[0].ncols, 8), dtype=np.float32)
    expected = client.multiply(handles[0], x).tobytes()
    with gateway.connect(max_retries=3, deadline_ms=5_000.0) as tough:
        for index in range(8):
            assert tough.multiply(handles[0], x).tobytes() == expected
        print(f"chaos: survived a worker crash + a dropped connection "
              f"({tough.retries_used} retries); results still "
              f"bit-identical")
    gateway.set_fault_plan(None)
    deadline = time.perf_counter() + 30.0
    while (set(gateway.worker_pids()) == pids_before
           or len(gateway.worker_pids()) < 2):
        assert time.perf_counter() < deadline
        time.sleep(0.01)
    print(f"chaos: pool recovered "
          f"(workers {sorted(pids_before)} -> "
          f"{sorted(gateway.worker_pids())})")
    with gateway.connect() as hurried:
        try:
            # an already-expired budget: rejected at admission, typed
            hurried.profile(handles[1],
                            rng.random((matrices[1].ncols, 8),
                                       dtype=np.float32),
                            backend="sim", deadline_ms=1.0)
        except DeadlineExceeded as error:
            print(f"chaos: expired budget raises DeadlineExceeded: "
                  f"{error}")

    # -- one scrape: gateway counters + per-worker service series ------
    print("\nselected series from the stats op:")
    for line in client.stats().splitlines():
        if line.startswith(("gateway_requests_total",
                            "gateway_rejections_total",
                            "gateway_worker_crashes_total")):
            print(f"  {line}")

    client.close()
    gateway.close()
    print("\ngateway drained and closed cleanly")


if __name__ == "__main__":
    main()
