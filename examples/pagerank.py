"""Personalized PageRank via SpMM — many personalization vectors at once.

PageRank is one of the paper's motivating SpMM applications (§I).  With
``d`` personalization vectors stacked as the dense operand, each power
iteration is one SpMM: ``R <- alpha * P^T @ R + (1 - alpha) * E``, which
amortizes the sparse traversal across all vectors exactly like the GNN
workloads.

Run:  python examples/pagerank.py
"""

import numpy as np

from repro import CsrMatrix, JitSpMM
from repro.datasets import power_law_graph


def column_stochastic_transpose(graph: CsrMatrix) -> CsrMatrix:
    """Build P^T where P is the row-stochastic transition matrix."""
    out_degree = graph.row_lengths().astype(np.float32)
    row_of = np.repeat(np.arange(graph.nrows), graph.row_lengths())
    vals = (np.ones(graph.nnz, dtype=np.float32)
            / np.maximum(out_degree[row_of], 1.0))
    weighted = CsrMatrix(graph.nrows, graph.ncols, graph.row_ptr,
                         graph.col_indices, vals.astype(np.float32))
    return CsrMatrix.from_coo(weighted.to_coo().transpose(), name="P^T")


def pagerank(engine: JitSpMM, p_t: CsrMatrix, personalization: np.ndarray,
             alpha: float = 0.85, iterations: int = 30) -> np.ndarray:
    n, d = personalization.shape
    ranks = np.full((n, d), 1.0 / n, dtype=np.float32)
    teleport = (1.0 - alpha) * personalization
    for _ in range(iterations):
        ranks = alpha * engine.multiply(p_t, ranks) + teleport
        # renormalize to absorb dangling-node leakage
        ranks /= ranks.sum(axis=0, keepdims=True)
    return ranks


def main() -> None:
    rng = np.random.default_rng(1)
    graph = power_law_graph(3000, 60_000, alpha=2.0, seed=9, name="web")
    print(f"graph: {graph}")
    p_t = column_stochastic_transpose(graph)

    # 16 personalization vectors: one uniform + 15 topic-biased
    n, d = graph.nrows, 16
    personalization = np.zeros((n, d), dtype=np.float32)
    personalization[:, 0] = 1.0 / n
    for column in range(1, d):
        seeds = rng.integers(0, n, size=8)
        personalization[seeds, column] = 1.0 / len(seeds)

    engine = JitSpMM(split="nnz", threads=8)
    ranks = pagerank(engine, p_t, personalization)

    top = np.argsort(-ranks[:, 0])[:5]
    print("\ntop-5 global PageRank nodes:")
    for node in top:
        print(f"  node {node:5d}: rank {ranks[node, 0]:.5f}, "
              f"in-degree {int(p_t.row_lengths()[node])}")

    overlap = len(set(np.argsort(-ranks[:, 0])[:20])
                  & set(np.argsort(-ranks[:, 1])[:20]))
    print(f"\ntop-20 overlap between global and topic-0 ranking: {overlap}/20")


if __name__ == "__main__":
    main()
