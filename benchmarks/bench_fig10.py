"""Benchmark target regenerating the paper's Figure 10."""

from repro.bench.fig10 import run_fig10
from repro.bench.fig9 import COLUMN_COUNTS, SPLITS


def test_fig10(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_fig10, args=(bench_config,), rounds=1, iterations=1)
    record_result("fig10", result.render())
    for d in COLUMN_COUNTS:
        for split in SPLITS:
            average = result.data.average(d, split)
            assert average > 1.0, (
                f"JIT should edge out the MKL-like kernel "
                f"(d={d}, {split}: {average:.2f}x)")
            assert average < 5.0, "the MKL gap should be narrow (paper: ~1.4x)"
