"""Benchmark target for the feedback-directed AOT pass search."""

from repro.bench.passsearch import run_passsearch


def test_passsearch(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_passsearch, args=(bench_config,), rounds=1, iterations=1)
    record_result("passsearch", result.render())
    # the never-regress contract, checked at full scale: a searched
    # pipeline is never slower than the fixed-function lowering it
    # replaced, and its output is bit-identical on every cell
    for cell, row in result.rows.items():
        assert row["cycles_searched"] <= row["cycles_fixed"], (cell, row)
        assert row["bit_identical"], cell
    # the acceptance target: the search pays for itself somewhere —
    # at least one personality x dataset cell speeds up >= 10%
    assert result.max_reduction_pct() >= 10.0
