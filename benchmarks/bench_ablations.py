"""Benchmark target for the design-choice ablations (beyond the paper)."""

from repro.bench.ablations import run_ablations


def test_ablations(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_ablations, args=(bench_config,), rounds=1, iterations=1)
    record_result("ablations", result.render())
    # SIMD + CCM must beat the scalar JIT configuration
    for name, (simd, scalar) in result.ccm.items():
        assert scalar > simd, f"{name}: SIMD CCM should win"
    # wider vectors should not hurt
    assert result.isa["avx512"] <= result.isa["sse2"] * 1.2
