"""Benchmark target regenerating the paper's Figure 9."""

from repro.bench.fig9 import COLUMN_COUNTS, SPLITS, run_fig9


def test_fig9(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_fig9, args=(bench_config,), rounds=1, iterations=1)
    record_result("fig9", result.render())
    for d in COLUMN_COUNTS:
        for split in SPLITS:
            average = result.data.average(d, split)
            assert average > 1.5, (
                f"JIT should clearly beat auto-vectorization "
                f"(d={d}, {split}: {average:.2f}x)")
    # the paper's d-trend: wider dense operands widen the gap
    avg16 = sum(result.data.average(16, s) for s in SPLITS)
    avg32 = sum(result.data.average(32, s) for s in SPLITS)
    assert avg32 > 0.8 * avg16
