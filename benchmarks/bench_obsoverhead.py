"""Benchmark target for the observability-overhead measurement."""

from repro.bench.obsoverhead import (
    DISABLED_SPAN_NS_LIMIT,
    OVERHEAD_PCT_LIMIT,
    run_obsoverhead,
)


def test_obsoverhead(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_obsoverhead, args=(bench_config,), rounds=1, iterations=1)
    record_result("obsoverhead", result.render())
    # the acceptance targets: the disabled span() path stays a cheap
    # no-op, and recording spans costs < 5% of serving throughput
    assert result.disabled_span_ns < DISABLED_SPAN_NS_LIMIT
    assert result.overhead_pct() < OVERHEAD_PCT_LIMIT
