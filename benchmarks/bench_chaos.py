"""Benchmark target for the chaos (fault-storm resilience) harness."""

from repro.bench.chaos import run_chaos


def test_chaos(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_chaos, args=(bench_config,), rounds=1, iterations=1)
    record_result("chaos", result.render())
    # the acceptance targets: after the storm clears, the gateway is
    # fully available again (>= 99% success under a deadline), nothing
    # leaked, every served result was bit-exact, and every failure
    # surfaced as a typed repro error
    assert result.success_rate_post_recovery() >= 0.99
    assert result.leaked_slots == 0
    assert result.storm_mismatches == 0
    assert result.untyped_failures == 0
    # deadline enforcement: an expired deadline fails within the grace
    # window — no reply can arrive after deadline + grace
    assert result.deadline_overshoot_ms <= 250.0
