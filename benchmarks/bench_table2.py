"""Benchmark target regenerating the paper's Table II."""

from repro.bench.table2 import run_table2


def test_table2(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_table2, args=(bench_config,), rounds=1, iterations=1)
    record_result("table2", result.render())
    # reproduction assertions: the paper's orderings must hold
    for metric in ("cycles", "memory_loads", "instructions"):
        for system in ("gcc", "clang", "icc"):
            assert result.ratio(metric, system) > 1.5, (
                f"JIT must clearly beat {system} on {metric}")
    branches = {s: result.counters[s].branches for s in ("gcc", "clang", "icc")}
    assert branches["gcc"] > branches["clang"] > branches["icc"]
