"""Benchmark target regenerating the paper's Figure 11."""

from repro.bench.fig11 import run_fig11


def test_fig11(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_fig11, args=(bench_config,), rounds=1, iterations=1)
    record_result("fig11", result.render())
    # JIT must be the lowest bar on loads, branches and instructions
    for metric in ("memory_loads", "branches", "instructions"):
        assert result.average_ratio(metric, "icc-avx512") > 1.2
        assert result.average_ratio(metric, "mkl") > 1.0
    # branch misses: the weakest improvement (predictor absorbs branches)
    miss_gain = result.average_ratio("branch_misses", "icc-avx512")
    insn_gain = result.average_ratio("instructions", "icc-avx512")
    assert miss_gain < insn_gain
