"""Benchmark target for the per-backend simulated-instructions/sec grid."""

from repro.bench.simspeed import run_simspeed


def test_simspeed(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_simspeed, args=(bench_config,), rounds=1, iterations=1)
    record_result("simspeed", result.render())
    # the simulators retire identical instruction streams
    for dataset in result.datasets():
        counts = {backend: result.rows[(dataset, backend)]["instructions"]
                  for backend in ("counts", "sim-ref", "sim", "sim-fused")}
        assert len(set(counts.values())) == 1, (dataset, counts)
    # the acceptance target: the record/replay timing engine (plus
    # superblock compilation) buys >= 3x the cycle-accurate instruction
    # throughput of the per-access sim-ref path
    assert result.speedup_vs_sim("sim-fused") >= 3.0
