"""Shared configuration for the benchmark suite.

One :class:`BenchConfig` is shared across all bench modules in the
session so that Figures 9, 10 and 11 — which need the same simulations —
reuse each other's cached runs instead of re-simulating.

Rendered tables are written to ``benchmarks/results/*.txt`` and echoed in
the terminal summary (so they survive pytest's output capturing).

Runtime knobs (environment variables):

* ``REPRO_BENCH_SCALE``     — twin scale relative to Table III
  (default 2**-18);
* ``REPRO_BENCH_THREADS``   — simulated threads (default 8);
* ``REPRO_BENCH_DATASETS``  — comma-separated subset of Table III names
  for quick runs.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.harness import BenchConfig

_RESULTS: list[tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    return BenchConfig()


@pytest.fixture
def record_result():
    """Store a rendered experiment table for the terminal summary."""

    def record(name: str, text: str) -> None:
        _RESULTS.append((name, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for name, text in _RESULTS:
        terminalreporter.write_line("")
        terminalreporter.write_line("=" * 78)
        terminalreporter.write_line(f"experiment: {name}")
        terminalreporter.write_line("=" * 78)
        for line in text.splitlines():
            terminalreporter.write_line(line)
