"""Benchmark target for the serving amortization experiment."""

from repro.bench.serving import run_serving


def test_serving(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_serving, args=(bench_config,), rounds=1, iterations=1)
    record_result("serving", result.render())
    # codegen must run exactly once per registered matrix...
    assert result.codegen_amortized()
    # ...and its amortized share of the stream must strictly fall
    assert result.overhead_strictly_decreasing()
