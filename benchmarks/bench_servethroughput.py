"""Benchmark target for the serving-throughput coalescing grid."""

from repro.bench.servethroughput import run_servethroughput


def test_servethroughput(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_servethroughput, args=(bench_config,), rounds=1, iterations=1)
    record_result("servethroughput", result.render())
    # the acceptance target: coalescing concurrent requests into
    # stacked-operand batches buys >= 2x the per-request throughput on
    # the same closed-loop workload
    assert result.speedup_coalesced() >= 2.0
    # tiering target: serving fresh handles from the address-free
    # template tier takes >= 3x off the first-request p99 vs inline
    # specialization, without changing a single bit of any result
    assert result.coldstart_speedup_p99() >= 3.0
    assert result.coldstart["bit_identical"]
    assert result.coldstart["promoted"]
