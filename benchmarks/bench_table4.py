"""Benchmark target regenerating the paper's Table IV."""

from repro.bench.table4 import run_table4


def test_table4(benchmark, bench_config, record_result):
    result = benchmark.pedantic(
        run_table4, args=(bench_config,), rounds=1, iterations=1)
    record_result("table4", result.render())
    # at the paper's scale, codegen overhead must be negligible everywhere
    for name, pct in result.paper_scale_pct.items():
        assert pct < 2.0, (
            f"{name}: paper-scale codegen overhead {pct:.2f}% looks wrong")
    assert result.overhead_shrinks_with_size()
