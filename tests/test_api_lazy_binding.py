"""Lazy operand binding: native-backend plans never map simulated memory.

``System.bind`` validates operands and partitions work; the simulated
address space materializes only when something reads it — kernel
identity resolution (JIT kernels bake mapped addresses) or a simulated
machine backend.  ``Memory.map_events`` counts every segment mapping
process-wide, so "a native run maps nothing" is directly observable.
"""

import numpy as np
import pytest

import repro
from repro.api import ExecutionConfig, get_system
from repro.datasets.generators import uniform_random
from repro.machine import Memory


@pytest.fixture(scope="module")
def problem():
    matrix = uniform_random(120, 900, seed=13)
    rng = np.random.default_rng(0)
    return matrix, rng.random((matrix.ncols, 8), dtype=np.float32)


def _map_delta(fn):
    before = Memory.map_events
    result = fn()
    return result, Memory.map_events - before


class TestNativeNeverMaps:
    @pytest.mark.parametrize("system", ["jit", "aot:gcc", "mkl"])
    def test_native_run_performs_zero_mappings(self, problem, system):
        matrix, x = problem
        result, mapped = _map_delta(lambda: repro.run(
            matrix, x, system=system, threads=2, backend="native"))
        assert mapped == 0
        assert np.allclose(result.y, repro.spmm_reference(matrix, x),
                           atol=1e-4)

    def test_bind_alone_performs_zero_mappings(self, problem):
        matrix, x = problem
        plan, mapped = _map_delta(lambda: get_system("jit").prepare(
            ExecutionConfig(threads=2, backend="native")).bind(matrix, x))
        assert mapped == 0
        assert not plan.mapped
        assert plan.kernel is None

    def test_refresh_and_multiply_stay_unmapped(self, problem):
        matrix, x = problem
        plan = get_system("jit").prepare(
            ExecutionConfig(threads=2, backend="native")).bind(matrix, x)
        _, mapped = _map_delta(lambda: (plan.refresh(x),
                                        plan.execute(),
                                        plan.multiply(x)))
        assert mapped == 0
        assert not plan.mapped


class TestMaterialization:
    def test_simulated_backend_materializes_on_demand(self, problem):
        matrix, x = problem
        plan = get_system("jit").prepare(
            ExecutionConfig(threads=2, backend="native")).bind(matrix, x)
        assert not plan.mapped
        result, mapped = _map_delta(lambda: plan.execute(backend="counts"))
        assert mapped > 0
        assert plan.mapped
        assert result.counters.instructions > 0
        assert np.array_equal(result.y, repro.spmm_reference(matrix, x))

    def test_key_resolution_materializes_jit_addresses(self, problem):
        matrix, x = problem
        plan = get_system("jit").prepare(
            ExecutionConfig(threads=2, backend="native")).bind(matrix, x)
        key = plan.key  # identity bakes mapped base addresses
        assert plan.mapped
        assert key == plan.key  # stable afterwards

    def test_refresh_before_materialization_is_visible_after(self, problem):
        """X written pre-mapping aliases the mapped segment: a later
        simulated run reads the refreshed values."""
        matrix, x = problem
        plan = get_system("jit").prepare(
            ExecutionConfig(threads=2, backend="native")).bind(matrix, x)
        x2 = x * 3.0
        plan.refresh(x2)
        result = plan.execute(backend="counts")
        assert np.array_equal(result.y, repro.spmm_reference(matrix, x2))

    def test_native_result_bit_equal_to_premapped_path(self, problem):
        """Lazy binding changes when mapping happens, never the result:
        a simulated run on a lazily-bound plan matches one bound the
        eager way (execute once, then reuse)."""
        matrix, x = problem
        lazy = get_system("jit").prepare(
            ExecutionConfig(threads=2)).bind(matrix, x)
        eager = get_system("jit").prepare(
            ExecutionConfig(threads=2)).bind(matrix, x)
        eager.operands  # force the mapping up front
        a = lazy.execute(backend="counts")
        b = eager.execute(backend="counts")
        assert np.array_equal(a.y, b.y)
        assert a.counters.as_dict() == b.counters.as_dict()
