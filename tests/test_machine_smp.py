"""Tests for the multi-core machine and scheduler."""

import numpy as np
import pytest

from repro.isa.assembler import Assembler
from repro.isa.operands import Imm, Mem
from repro.isa.registers import regs
from repro.machine import CpuConfig, Machine, Memory, ThreadSpec
from repro.machine.smp import THREAD_OVERHEAD_CYCLES


def counting_program(counter_base: int, per_thread: int):
    """Each thread adds 1 to a shared counter ``per_thread`` times via xadd."""
    asm = Assembler("count")
    asm.mov(regs.rdi, Imm(counter_base, 64))
    asm.mov(regs.rcx, 0)
    asm.label("loop")
    asm.cmp(regs.rcx, per_thread)
    asm.jge("done")
    asm.mov(regs.rsi, 1)
    asm.xadd(Mem(regs.rdi, size=8), regs.rsi, lock=True)
    asm.inc(regs.rcx)
    asm.jmp("loop")
    asm.label("done")
    asm.ret()
    return asm.finish()


def range_sum_program(data_base: int, out_base: int):
    """Sum data[start:end) into out[tid]; start/end/tid passed in registers."""
    asm = Assembler("rangesum")
    # rdi = start index, rsi = end index, rdx = tid
    asm.mov(regs.rax, Imm(data_base, 64))
    asm.mov(regs.rbx, 0)
    asm.label("loop")
    asm.cmp(regs.rdi, regs.rsi)
    asm.jge("done")
    asm.add(regs.rbx, Mem(regs.rax, regs.rdi, 8, 0, size=8))
    asm.inc(regs.rdi)
    asm.jmp("loop")
    asm.label("done")
    asm.mov(regs.rcx, Imm(out_base, 64))
    asm.mov(regs.r9, regs.rdx)
    asm.shl(regs.r9, 3)
    asm.add(regs.rcx, regs.r9)
    asm.mov(Mem(regs.rcx, size=8), regs.rbx)
    asm.ret()
    return asm.finish()


class TestAtomicity:
    @pytest.mark.parametrize("threads,quantum", [(2, 1), (4, 3), (8, 64)])
    def test_shared_counter_is_exact(self, threads, quantum):
        mem = Memory()
        base, _ = mem.map_zeros(8)
        program = counting_program(base, per_thread=25)
        machine = Machine(mem, CpuConfig(timing=False), quantum=quantum)
        machine.run([ThreadSpec(program) for _ in range(threads)])
        assert mem.read_int(base, 8) == threads * 25

    def test_result_independent_of_quantum(self):
        results = []
        for quantum in (1, 7, 128):
            mem = Memory()
            base, _ = mem.map_zeros(8)
            machine = Machine(mem, CpuConfig(timing=False), quantum=quantum)
            machine.run([ThreadSpec(counting_program(base, 10))] * 3)
            results.append(mem.read_int(base, 8))
        assert results == [30, 30, 30]


class TestWorkPartitioning:
    def test_disjoint_ranges_sum_correctly(self):
        mem = Memory()
        data = np.arange(100, dtype=np.int64)
        out = np.zeros(4, dtype=np.int64)
        db = mem.map_array(data)
        ob = mem.map_array(out)
        program = range_sum_program(db, ob)
        threads = [
            ThreadSpec(program, init_gpr={"rdi": t * 25, "rsi": (t + 1) * 25,
                                          "rdx": t})
            for t in range(4)
        ]
        machine = Machine(mem, CpuConfig(timing=False))
        merged, per_thread = machine.run(threads)
        assert out.sum() == data.sum()
        assert len(per_thread) == 4
        # per-thread counters sum into merged (except cycles)
        assert merged.instructions == sum(c.instructions for c in per_thread)


class TestTiming:
    def test_elapsed_is_max_thread_plus_overhead(self):
        mem = Memory()
        data = np.arange(64, dtype=np.int64)
        out = np.zeros(2, dtype=np.int64)
        db = mem.map_array(data)
        ob = mem.map_array(out)
        program = range_sum_program(db, ob)
        # thread 0 does 4 elements, thread 1 does 60: very imbalanced
        threads = [
            ThreadSpec(program, init_gpr={"rdi": 0, "rsi": 4, "rdx": 0}),
            ThreadSpec(program, init_gpr={"rdi": 4, "rsi": 64, "rdx": 1}),
        ]
        machine = Machine(mem, CpuConfig(timing=True))
        merged, per_thread = machine.run(threads)
        slowest = max(c.cycles for c in per_thread)
        assert merged.cycles == pytest.approx(slowest + THREAD_OVERHEAD_CYCLES)
        assert per_thread[1].cycles > per_thread[0].cycles

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            Machine(Memory(), quantum=0)

    def test_run_single(self):
        mem = Memory()
        base, _ = mem.map_zeros(8)
        machine = Machine(mem, CpuConfig(timing=False))
        counters = machine.run_single(ThreadSpec(counting_program(base, 5)))
        assert mem.read_int(base, 8) == 5
        assert counters.atomic_ops == 5
