"""Tests for the multi-core machine and scheduler."""

import numpy as np
import pytest

from repro.errors import ExecutionLimitExceeded
from repro.isa.assembler import Assembler
from repro.isa.operands import Imm, Mem
from repro.isa.registers import regs
from repro.machine import CpuConfig, Machine, Memory, ThreadSpec
from repro.machine.smp import THREAD_OVERHEAD_CYCLES


def counting_program(counter_base: int, per_thread: int):
    """Each thread adds 1 to a shared counter ``per_thread`` times via xadd."""
    asm = Assembler("count")
    asm.mov(regs.rdi, Imm(counter_base, 64))
    asm.mov(regs.rcx, 0)
    asm.label("loop")
    asm.cmp(regs.rcx, per_thread)
    asm.jge("done")
    asm.mov(regs.rsi, 1)
    asm.xadd(Mem(regs.rdi, size=8), regs.rsi, lock=True)
    asm.inc(regs.rcx)
    asm.jmp("loop")
    asm.label("done")
    asm.ret()
    return asm.finish()


def range_sum_program(data_base: int, out_base: int):
    """Sum data[start:end) into out[tid]; start/end/tid passed in registers."""
    asm = Assembler("rangesum")
    # rdi = start index, rsi = end index, rdx = tid
    asm.mov(regs.rax, Imm(data_base, 64))
    asm.mov(regs.rbx, 0)
    asm.label("loop")
    asm.cmp(regs.rdi, regs.rsi)
    asm.jge("done")
    asm.add(regs.rbx, Mem(regs.rax, regs.rdi, 8, 0, size=8))
    asm.inc(regs.rdi)
    asm.jmp("loop")
    asm.label("done")
    asm.mov(regs.rcx, Imm(out_base, 64))
    asm.mov(regs.r9, regs.rdx)
    asm.shl(regs.r9, 3)
    asm.add(regs.rcx, regs.r9)
    asm.mov(Mem(regs.rcx, size=8), regs.rbx)
    asm.ret()
    return asm.finish()


class TestAtomicity:
    @pytest.mark.parametrize("threads,quantum", [(2, 1), (4, 3), (8, 64)])
    def test_shared_counter_is_exact(self, threads, quantum):
        mem = Memory()
        base, _ = mem.map_zeros(8)
        program = counting_program(base, per_thread=25)
        machine = Machine(mem, CpuConfig(timing=False), quantum=quantum)
        machine.run([ThreadSpec(program) for _ in range(threads)])
        assert mem.read_int(base, 8) == threads * 25

    def test_result_independent_of_quantum(self):
        results = []
        for quantum in (1, 7, 128):
            mem = Memory()
            base, _ = mem.map_zeros(8)
            machine = Machine(mem, CpuConfig(timing=False), quantum=quantum)
            machine.run([ThreadSpec(counting_program(base, 10))] * 3)
            results.append(mem.read_int(base, 8))
        assert results == [30, 30, 30]


def batch_claim_program(next_base: int, claims_base: int, batches: int):
    """Listing-1-style dynamic dispatcher: claim batches via lock xadd.

    Each claimed batch index gets its claims[] slot incremented, so the
    exactly-once contract is directly observable: any double dispatch
    leaves a slot > 1, any lost batch leaves a slot == 0.
    """
    asm = Assembler("claim")
    asm.mov(regs.rdi, Imm(next_base, 64))
    asm.mov(regs.r8, Imm(claims_base, 64))
    asm.label("loop")
    asm.mov(regs.rsi, 1)
    asm.xadd(Mem(regs.rdi, size=8), regs.rsi, lock=True)  # rsi = old NEXT
    asm.cmp(regs.rsi, batches)
    asm.jge("done")
    # claims[old] += 1
    asm.mov(regs.rax, Mem(regs.r8, regs.rsi, 8, 0, size=8))
    asm.inc(regs.rax)
    asm.mov(Mem(regs.r8, regs.rsi, 8, 0, size=8), regs.rax)
    asm.jmp("loop")
    asm.label("done")
    asm.ret()
    return asm.finish()


class TestSchedulingDeterminism:
    """Satellite coverage: interleaving and dispatch across quanta."""

    QUANTA = (1, 2, 3, 5, 8, 64, 1000)

    def test_interleaving_is_deterministic_per_quantum(self):
        """Two identical machines replay the identical interleaving:
        per-thread counters (not just totals) match run for run."""
        def run_once(quantum):
            mem = Memory()
            base, _ = mem.map_zeros(8)
            machine = Machine(mem, CpuConfig(timing=False), quantum=quantum)
            _, per_thread = machine.run(
                [ThreadSpec(counting_program(base, 10), name=f"t{i}")
                 for i in range(3)])
            return [c.as_dict() for c in per_thread]

        for quantum in self.QUANTA:
            assert run_once(quantum) == run_once(quantum)

    def test_static_partition_counters_invariant_across_quanta(self):
        """Threads with disjoint static work retire the same per-thread
        instruction stream whatever the quantum: the interleaving moves,
        the per-thread counters must not."""
        reference = None
        for quantum in self.QUANTA:
            mem = Memory()
            data = np.arange(60, dtype=np.int64)
            out = np.zeros(3, dtype=np.int64)
            db = mem.map_array(data)
            ob = mem.map_array(out)
            program = range_sum_program(db, ob)
            threads = [
                ThreadSpec(program, init_gpr={"rdi": t * 20,
                                              "rsi": (t + 1) * 20,
                                              "rdx": t})
                for t in range(3)
            ]
            machine = Machine(mem, CpuConfig(timing=False), quantum=quantum)
            _, per_thread = machine.run(threads)
            snapshot = [c.as_dict() for c in per_thread]
            assert out.sum() == data.sum()
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference, f"quantum={quantum}"

    @pytest.mark.parametrize("quantum", QUANTA)
    @pytest.mark.parametrize("fused", [False, True])
    def test_lock_xadd_claims_every_batch_exactly_once(self, quantum,
                                                       fused):
        """The dynamic-dispatch race: whatever the interleaving (and
        whether blocks are superblock-fused), every batch is claimed by
        exactly one thread."""
        batches, threads = 37, 4
        mem = Memory()
        next_base, _ = mem.map_zeros(8)
        claims = np.zeros(batches, dtype=np.int64)
        claims_base = mem.map_array(claims)
        program = batch_claim_program(next_base, claims_base, batches)
        machine = Machine(mem, CpuConfig(timing=False), quantum=quantum)
        merged, _ = machine.run(
            [ThreadSpec(program, name=f"w{t}") for t in range(threads)],
            fused=fused)
        assert claims.tolist() == [1] * batches
        # every claim plus every thread's terminating probe is an xadd
        assert merged.atomic_ops == batches + threads

    def test_fused_reproduces_the_same_race_winners(self):
        """Superblock scheduling preserves the interleaving exactly, so
        the *same* thread wins each batch — not merely some thread."""
        for quantum in (1, 3, 64):
            outcomes = []
            for fused in (False, True):
                mem = Memory()
                next_base, _ = mem.map_zeros(8)
                claims = np.zeros(23, dtype=np.int64)
                claims_base = mem.map_array(claims)
                program = batch_claim_program(next_base, claims_base, 23)
                machine = Machine(mem, CpuConfig(timing=False),
                                  quantum=quantum)
                _, per_thread = machine.run(
                    [ThreadSpec(program, name=f"w{t}") for t in range(4)],
                    fused=fused)
                outcomes.append([c.as_dict() for c in per_thread])
            assert outcomes[0] == outcomes[1], f"quantum={quantum}"


class TestExecutionLimit:
    def test_limit_names_thread_and_limit(self):
        mem = Memory()
        asm = Assembler("spin")
        asm.label("loop")
        asm.jmp("loop")
        program = asm.finish()
        machine = Machine(mem, CpuConfig(timing=False,
                                         max_instructions=100))
        with pytest.raises(ExecutionLimitExceeded) as excinfo:
            machine.run([ThreadSpec(program, name="spinner")])
        message = str(excinfo.value)
        assert "spinner" in message
        assert "100" in message

    def test_limit_is_per_thread(self):
        """One thread spinning cannot borrow budget from finished
        peers: the limit applies to each thread's own stream."""
        mem = Memory()
        base, _ = mem.map_zeros(8)
        finite = counting_program(base, 1)
        asm = Assembler("spin")
        asm.label("loop")
        asm.jmp("loop")
        spinner = asm.finish()
        machine = Machine(mem, CpuConfig(timing=False,
                                         max_instructions=500))
        with pytest.raises(ExecutionLimitExceeded, match="spin"):
            machine.run([ThreadSpec(finite, name="finite"),
                         ThreadSpec(spinner, name="spin")])


class TestWorkPartitioning:
    def test_disjoint_ranges_sum_correctly(self):
        mem = Memory()
        data = np.arange(100, dtype=np.int64)
        out = np.zeros(4, dtype=np.int64)
        db = mem.map_array(data)
        ob = mem.map_array(out)
        program = range_sum_program(db, ob)
        threads = [
            ThreadSpec(program, init_gpr={"rdi": t * 25, "rsi": (t + 1) * 25,
                                          "rdx": t})
            for t in range(4)
        ]
        machine = Machine(mem, CpuConfig(timing=False))
        merged, per_thread = machine.run(threads)
        assert out.sum() == data.sum()
        assert len(per_thread) == 4
        # per-thread counters sum into merged (except cycles)
        assert merged.instructions == sum(c.instructions for c in per_thread)


class TestTiming:
    def test_elapsed_is_max_thread_plus_overhead(self):
        mem = Memory()
        data = np.arange(64, dtype=np.int64)
        out = np.zeros(2, dtype=np.int64)
        db = mem.map_array(data)
        ob = mem.map_array(out)
        program = range_sum_program(db, ob)
        # thread 0 does 4 elements, thread 1 does 60: very imbalanced
        threads = [
            ThreadSpec(program, init_gpr={"rdi": 0, "rsi": 4, "rdx": 0}),
            ThreadSpec(program, init_gpr={"rdi": 4, "rsi": 64, "rdx": 1}),
        ]
        machine = Machine(mem, CpuConfig(timing=True))
        merged, per_thread = machine.run(threads)
        slowest = max(c.cycles for c in per_thread)
        assert merged.cycles == pytest.approx(slowest + THREAD_OVERHEAD_CYCLES)
        assert per_thread[1].cycles > per_thread[0].cycles

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            Machine(Memory(), quantum=0)

    def test_run_single(self):
        mem = Memory()
        base, _ = mem.map_zeros(8)
        machine = Machine(mem, CpuConfig(timing=False))
        counters = machine.run_single(ThreadSpec(counting_program(base, 5)))
        assert mem.read_int(base, 8) == 5
        assert counters.atomic_ops == 5
