"""Tests for the reference SpMM kernels (the correctness oracles)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.sparse import (
    CsrMatrix,
    spmm_reference,
    spmm_rowwise,
    spmm_scalar,
    spmv_reference,
)
from tests.conftest import random_csr


class TestShapes:
    def test_rejects_dimension_mismatch(self, rng):
        mat = random_csr(rng, 5, 6)
        with pytest.raises(ShapeError):
            spmm_reference(mat, rng.random((7, 3)).astype(np.float32))

    def test_rejects_1d_dense(self, rng):
        mat = random_csr(rng, 5, 6)
        with pytest.raises(ShapeError):
            spmm_reference(mat, rng.random(6).astype(np.float32))

    def test_output_shape(self, rng):
        mat = random_csr(rng, 5, 6)
        x = rng.random((6, 4)).astype(np.float32)
        assert spmm_reference(mat, x).shape == (5, 4)
        assert spmm_reference(mat, x).dtype == np.float32


class TestAgainstDense:
    @pytest.mark.parametrize("d", [1, 3, 8, 16, 45])
    def test_reference_matches_numpy_matmul(self, rng, d):
        mat = random_csr(rng, 30, 25)
        x = rng.random((25, d)).astype(np.float32)
        expected = mat.to_dense() @ x
        assert np.allclose(spmm_reference(mat, x), expected, atol=1e-3)

    def test_empty_rows_give_zero(self, rng):
        dense = np.zeros((4, 4), dtype=np.float32)
        dense[0, 1] = 2.0
        mat = CsrMatrix.from_dense(dense)
        x = rng.random((4, 3)).astype(np.float32)
        y = spmm_reference(mat, x)
        assert np.all(y[1:] == 0)

    def test_empty_matrix(self):
        mat = CsrMatrix.from_dense(np.zeros((3, 3), dtype=np.float32))
        x = np.ones((3, 2), dtype=np.float32)
        assert np.all(spmm_reference(mat, x) == 0)

    def test_spmv_is_d1_column(self, rng):
        mat = random_csr(rng, 10, 10)
        v = rng.random(10).astype(np.float32)
        assert np.allclose(spmv_reference(mat, v),
                           spmm_reference(mat, v[:, None])[:, 0])

    def test_spmv_rejects_matrix(self, rng):
        mat = random_csr(rng, 4, 4)
        with pytest.raises(ShapeError):
            spmv_reference(mat, rng.random((4, 2)).astype(np.float32))


class TestKernelAgreement:
    """All three traversal orders must agree (the paper's Alg. 1 vs Alg. 2)."""

    def test_scalar_matches_reference(self, rng):
        mat = random_csr(rng, 12, 10)
        x = rng.random((10, 5)).astype(np.float32)
        assert np.allclose(spmm_scalar(mat, x), spmm_reference(mat, x), atol=1e-4)

    def test_rowwise_matches_reference(self, rng):
        mat = random_csr(rng, 12, 10)
        x = rng.random((10, 5)).astype(np.float32)
        assert np.allclose(spmm_rowwise(mat, x), spmm_reference(mat, x), atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    d=st.integers(1, 20),
)
def test_property_linear_in_x(seed, d):
    """SpMM is linear: A @ (X1 + X2) == A @ X1 + A @ X2."""
    rng = np.random.default_rng(seed)
    mat = random_csr(rng, 15, 12)
    x1 = rng.random((12, d)).astype(np.float32)
    x2 = rng.random((12, d)).astype(np.float32)
    lhs = spmm_reference(mat, x1 + x2)
    rhs = spmm_reference(mat, x1) + spmm_reference(mat, x2)
    assert np.allclose(lhs, rhs, atol=1e-3)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_property_identity_is_noop(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 20))
    mat = CsrMatrix.from_dense(np.eye(n, dtype=np.float32))
    x = rng.random((n, 3)).astype(np.float32)
    assert np.allclose(spmm_reference(mat, x), x, atol=1e-6)
