"""Tests for instruction objects and mnemonic metadata."""

import pytest

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction, MNEMONICS, mnemonic_info
from repro.isa.operands import Imm, Mem
from repro.isa.registers import regs, zmm


class TestRegistry:
    def test_paper_listing2_mnemonics_present(self):
        # every mnemonic in the paper's Listing 1 and Listing 2 must exist
        for name in ("mov", "xadd", "cmp", "jge", "jmp", "ret", "vxorps",
                     "vbroadcastss", "vfmadd231ps", "vfmadd231ss", "vmovups",
                     "vmovss", "inc"):
            assert name in MNEMONICS

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            mnemonic_info("bogus")

    def test_cond_branches_read_flags(self):
        assert mnemonic_info("jge").reads_flags
        assert not mnemonic_info("jmp").reads_flags

    def test_cmp_writes_flags(self):
        assert mnemonic_info("cmp").writes_flags


class TestInstructionValidation:
    def test_arity_checked(self):
        with pytest.raises(AssemblyError):
            Instruction("inc", (regs.rax, regs.rbx))

    def test_lock_only_on_atomics(self):
        with pytest.raises(AssemblyError):
            Instruction("mov", (regs.rax, Imm(1)), lock=True)
        Instruction("xadd", (Mem(regs.rdi, size=8), regs.rsi), lock=True)

    def test_one_memory_operand_max(self):
        with pytest.raises(AssemblyError):
            Instruction("mov", (Mem(regs.rax, size=8), Mem(regs.rbx, size=8)))

    def test_imul_flexible_arity(self):
        Instruction("imul", (regs.rax, regs.rbx))
        Instruction("imul", (regs.rax, regs.rbx, Imm(8)))


class TestDataflow:
    def test_mov_reads_and_writes(self):
        insn = Instruction("mov", (regs.rax, regs.rbx))
        assert insn.registers_written() == (regs.rax,)
        assert insn.registers_read() == (regs.rbx,)

    def test_memory_address_registers_are_read(self):
        insn = Instruction("mov", (regs.rax, Mem(regs.rbx, regs.rcx, 8, 0, size=8)))
        assert set(insn.registers_read()) == {regs.rbx, regs.rcx}

    def test_store_reads_value_and_address(self):
        insn = Instruction("mov", (Mem(regs.rbx, size=8), regs.rax))
        assert set(insn.registers_read()) == {regs.rax, regs.rbx}
        assert insn.registers_written() == ()

    def test_fma_reads_destination(self):
        insn = Instruction("vfmadd231ps", (zmm(0), zmm(31), zmm(1)))
        assert zmm(0) in insn.registers_read()  # dst += src1 * src2
        assert insn.registers_written() == (zmm(0),)

    def test_zero_idiom_breaks_dependency(self):
        # vxorps z,z,z reads nothing (hardware dependency-breaking idiom)
        insn = Instruction("vxorps", (zmm(3), zmm(3), zmm(3)))
        assert insn.registers_read() == ()

    def test_non_idiom_xor_reads(self):
        insn = Instruction("vxorps", (zmm(3), zmm(1), zmm(2)))
        assert set(insn.registers_read()) == {zmm(1), zmm(2)}

    def test_memory_refs_direction(self):
        load = Instruction("mov", (regs.rax, Mem(regs.rbx, size=8)))
        store = Instruction("mov", (Mem(regs.rbx, size=8), regs.rax))
        assert load.memory_refs()[0][1] == "r"
        assert store.memory_refs()[0][1] == "w"

    def test_xadd_memory_is_rmw(self):
        insn = Instruction("xadd", (Mem(regs.rdi, size=8), regs.rsi), lock=True)
        assert insn.memory_refs()[0][1] == "rw"


class TestClassification:
    def test_branch_target(self):
        insn = Instruction("jge", ("end",))
        assert insn.is_branch and insn.is_cond_branch
        assert insn.branch_target == "end"

    def test_jmp_not_conditional(self):
        insn = Instruction("jmp", ("start",))
        assert insn.is_branch and not insn.is_cond_branch

    def test_str_rendering(self):
        insn = Instruction("xadd", (Mem(regs.rdi, size=8), regs.rsi), lock=True)
        assert str(insn).startswith("lock xadd")
