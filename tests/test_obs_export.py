"""repro.obs.export: Chrome-trace JSON, Prometheus text, metrics JSON."""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    metrics_json,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture
def tracer():
    tracer = Tracer(capacity=32, enabled=True)
    with tracer.span("serve.multiply", handle=0, d=8):
        with tracer.span("serve.codegen", generated=True):
            pass
    return tracer


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("req_total", service="a").inc(3)
    registry.gauge("live").set(2)
    registry.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
    return registry


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_document_shape(self, tracer):
        document = chrome_trace(tracer=tracer)
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["producer"] == "repro.obs"
        assert document["otherData"]["spans"] == 2
        assert document["otherData"]["dropped_spans"] == 0
        kinds = {e["ph"] for e in document["traceEvents"]}
        assert kinds == {"M", "X"}

    def test_events_carry_attrs_trace_id_and_category(self, tracer):
        events = [e for e in chrome_trace(tracer=tracer)["traceEvents"]
                  if e["ph"] == "X"]
        by_name = {e["name"]: e for e in events}
        multiply = by_name["serve.multiply"]
        assert multiply["cat"] == "serve"
        assert multiply["args"]["handle"] == 0
        assert multiply["args"]["trace_id"]
        codegen = by_name["serve.codegen"]
        assert codegen["args"]["trace_id"] == (
            multiply["args"]["trace_id"])
        assert codegen["dur"] <= multiply["dur"]

    def test_json_round_trips(self, tracer):
        document = json.loads(chrome_trace_json(tracer=tracer))
        assert len(document["traceEvents"]) == 3   # 1 meta + 2 spans

    def test_write_chrome_trace(self, tracer, tmp_path):
        path = write_chrome_trace(str(tmp_path / "trace.json"),
                                  tracer=tracer)
        document = json.loads(open(path).read())
        assert document["otherData"]["spans"] == 2

    def test_explicit_spans_list_wins(self, tracer):
        spans = tracer.spans()[:1]
        document = chrome_trace(spans, tracer=tracer)
        assert document["otherData"]["spans"] == 1

    def test_dropped_spans_surface_in_other_data(self):
        tracer = Tracer(capacity=4, enabled=True)
        for _ in range(10):
            with tracer.span("w"):
                pass
        document = chrome_trace(tracer=tracer)
        assert document["otherData"]["dropped_spans"] == 6

    def test_non_json_attrs_are_stringified(self):
        tracer = Tracer(enabled=True)
        with tracer.span("odd", key=(1, 2), obj=object()):
            pass
        json.loads(chrome_trace_json(tracer=tracer))   # must not raise


# ----------------------------------------------------------------------
# Prometheus text
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_type_headers_and_lines(self, registry):
        text = prometheus_text(registry=registry)
        assert "# TYPE req_total counter" in text
        assert 'req_total{service="a"} 3' in text
        assert "# TYPE live gauge" in text
        assert "live 2" in text

    def test_histogram_children_share_one_header(self, registry):
        text = prometheus_text(registry=registry)
        assert text.count("# TYPE lat_seconds histogram") == 1
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        assert "lat_seconds_sum 0.5" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", path='a"b\\c\nd').inc()
        text = prometheus_text(registry=registry)
        assert r'path="a\"b\\c\nd"' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(registry=MetricsRegistry()) == ""


# ----------------------------------------------------------------------
# Metrics JSON
# ----------------------------------------------------------------------
class TestMetricsJson:
    def test_document_round_trips(self, registry):
        document = json.loads(json.dumps(metrics_json(registry=registry)))
        by_name = {}
        for entry in document["metrics"]:
            by_name.setdefault(entry["name"], []).append(entry)
        assert by_name["req_total"][0]["labels"] == {"service": "a"}
        assert by_name["req_total"][0]["value"] == 3
        assert by_name["req_total"][0]["kind"] == "counter"
        assert "lat_seconds_bucket" in by_name

    def test_snapshot_argument_wins(self, registry):
        snapshot = registry.snapshot()
        registry.counter("req_total", service="a").inc(100)
        document = metrics_json(snapshot)
        (entry,) = [e for e in document["metrics"]
                    if e["name"] == "req_total"]
        assert entry["value"] == 3
