"""Tests for the gateway wire protocol: framing, payloads, errors."""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.errors import (FrameTooLarge, GatewayDisconnected, GatewayError,
                          GatewayOverloaded, ProtocolError, ShapeError)
from repro.serve.gateway import protocol as proto
from tests.conftest import random_csr


class TestHeader:
    def test_round_trip_every_op(self):
        for op in proto.OP_NAMES:
            frame = proto.encode_frame(op, b"payload", request_id=7 + op)
            parsed = proto.parse_header(frame[:proto.HEADER.size])
            assert parsed == (op, len(b"payload"), 7 + op, 0)

    def test_deadline_rides_the_header(self):
        frame = proto.encode_frame(proto.OP_MULTIPLY, b"xy",
                                   request_id=3, deadline_ms=1500)
        op, length, request_id, deadline_ms = proto.parse_header(
            frame[:proto.HEADER.size])
        assert (op, length, request_id) == (proto.OP_MULTIPLY, 2, 3)
        assert deadline_ms == 1500

    def test_zero_deadline_means_none(self):
        frame = proto.encode_frame(proto.OP_PING, b"")
        assert proto.parse_header(frame[:proto.HEADER.size])[3] == 0

    def test_bad_magic_rejected(self):
        frame = bytearray(proto.encode_frame(proto.OP_PING, b""))
        frame[0] ^= 0xFF
        with pytest.raises(ProtocolError, match="magic"):
            proto.parse_header(bytes(frame[:proto.HEADER.size]))

    def test_bad_version_rejected(self):
        header = proto.HEADER.pack(proto.MAGIC, 99, proto.OP_PING, 0, 0, 0)
        with pytest.raises(ProtocolError, match="version"):
            proto.parse_header(header)

    def test_unknown_op_rejected(self):
        header = proto.HEADER.pack(proto.MAGIC, proto.VERSION, 0x55, 0, 0, 0)
        with pytest.raises(ProtocolError, match="unknown op"):
            proto.parse_header(header)

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            proto.parse_header(b"\x47\x52\x01")

    def test_oversized_frame_rejected_before_payload(self):
        header = proto.HEADER.pack(proto.MAGIC, proto.VERSION,
                                   proto.OP_MULTIPLY, 1 << 30, 0, 0)
        with pytest.raises(FrameTooLarge):
            proto.parse_header(header, max_frame=1 << 20)

    def test_frame_too_large_is_a_protocol_error(self):
        assert issubclass(FrameTooLarge, ProtocolError)
        assert issubclass(ProtocolError, GatewayError)


class TestMultiplyPayload:
    def test_round_trip(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        payload = proto.encode_multiply(5, x, tenant="acme")
        handle, tenant, rows, cols, data = proto.decode_multiply(payload)
        assert (handle, tenant, rows, cols) == (5, "acme", 3, 4)
        decoded = np.frombuffer(data, dtype=np.float32).reshape(3, 4)
        np.testing.assert_array_equal(decoded, x)

    def test_operand_is_zero_copy_view(self):
        x = np.ones((2, 2), dtype=np.float32)
        payload = proto.encode_multiply(1, x)
        *_, data = proto.decode_multiply(payload)
        assert isinstance(data, memoryview)

    def test_truncated_payload_rejected(self):
        x = np.ones((4, 4), dtype=np.float32)
        payload = proto.encode_multiply(1, x)
        with pytest.raises(ProtocolError, match="expected"):
            proto.decode_multiply(payload[:-3])

    def test_short_fixed_part_rejected(self):
        with pytest.raises(ProtocolError, match="shorter"):
            proto.decode_multiply(b"\x01\x02")

    def test_reply_round_trip(self):
        y = np.linspace(0, 1, 6, dtype=np.float32).reshape(2, 3)
        body = proto.encode_multiply_reply(y, 2, 3)
        out = proto.decode_multiply_reply(body)
        np.testing.assert_array_equal(out, y)
        assert out.flags.owndata

    def test_reply_length_mismatch_rejected(self):
        y = np.ones((2, 3), dtype=np.float32)
        body = proto.encode_multiply_reply(y, 2, 3)
        with pytest.raises(ProtocolError, match="expected"):
            proto.decode_multiply_reply(body + b"\x00")


class TestRegisterPayload:
    def test_round_trip(self, rng):
        matrix = random_csr(rng, 20, 16, density=0.3, name="reg")
        payload = proto.encode_register(matrix, "reg", tenant="t0")
        meta, decoded = proto.decode_register(payload)
        assert meta["fingerprint"] == matrix.fingerprint()
        assert meta["tenant"] == "t0"
        assert decoded.fingerprint() == matrix.fingerprint()

    def test_array_bytes_mismatch_rejected(self, rng):
        matrix = random_csr(rng, 10, 10, density=0.3)
        payload = proto.encode_register(matrix)
        with pytest.raises(ProtocolError, match="array bytes"):
            proto.decode_register(payload[:-4])

    def test_missing_dims_rejected(self):
        meta = b'{"name": "x"}'
        payload = struct.pack("<I", len(meta)) + meta
        with pytest.raises(ProtocolError, match="dims"):
            proto.decode_register(payload)


class TestProfilePayload:
    def test_round_trip(self):
        x = np.full((3, 2), 2.0, dtype=np.float32)
        payload = proto.encode_profile(4, x, backend="counts", tenant="t")
        meta, data = proto.decode_profile(payload)
        assert meta["handle"] == 4 and meta["backend"] == "counts"
        decoded = np.frombuffer(data, dtype=np.float32).reshape(3, 2)
        np.testing.assert_array_equal(decoded, x)

    def test_reply_round_trip(self):
        y = np.ones((2, 2), dtype=np.float32)
        body = proto.encode_profile_reply(
            {"rows": 2, "cols": 2, "backend": "counts"}, y.tobytes())
        meta, out = proto.decode_profile_reply(body)
        assert meta["backend"] == "counts"
        np.testing.assert_array_equal(out, y)


class TestControlOps:
    def test_json_op_round_trip(self):
        payload = proto.encode_json_op(handle=3, tenant="t")
        assert proto.decode_json_op(payload) == {"handle": 3, "tenant": "t"}

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError, match="trailing"):
            proto.decode_json_op(proto.encode_json_op() + b"x")

    def test_meta_overrun_rejected(self):
        payload = struct.pack("<I", 100) + b"{}"
        with pytest.raises(ProtocolError, match="overruns"):
            proto.decode_json_op(payload)

    def test_non_object_meta_rejected(self):
        meta = b"[1, 2]"
        payload = struct.pack("<I", len(meta)) + meta
        with pytest.raises(ProtocolError, match="object"):
            proto.decode_json_op(payload)

    def test_invalid_json_rejected(self):
        meta = b"{nope"
        payload = struct.pack("<I", len(meta)) + meta
        with pytest.raises(ProtocolError, match="JSON"):
            proto.decode_json_op(payload)


class TestReplies:
    def test_ok_body_passthrough(self):
        body = proto.decode_reply(proto.encode_reply_ok(b"abc"))
        assert bytes(body) == b"abc"

    def test_error_maps_to_typed_exception(self):
        payload = proto.encode_reply_error(ShapeError("bad shape"))
        with pytest.raises(ShapeError, match="bad shape"):
            proto.decode_reply(payload)

    def test_overloaded_survives_the_wire(self):
        payload = proto.encode_reply_error(
            GatewayOverloaded("too many", reason="shm"))
        with pytest.raises(GatewayOverloaded, match="too many") as excinfo:
            proto.decode_reply(payload)
        assert excinfo.value.reason == "shm"

    def test_reason_field_overrun_rejected(self):
        name = b"ShapeError"
        payload = (b"\x01" + struct.pack("<H", len(name)) + name
                   + struct.pack("<H", 50) + b"short")
        with pytest.raises(ProtocolError, match="reason overruns"):
            proto.decode_reply(payload)

    def test_unknown_exception_becomes_gateway_error(self):
        payload = proto.encode_reply_error(RuntimeError("boom"))
        with pytest.raises(GatewayError, match="RuntimeError: boom"):
            proto.decode_reply(payload)

    def test_non_error_attribute_name_is_not_raised(self):
        # a hostile reply naming a non-exception attribute must not
        # get it instantiated; it degrades to GatewayError
        with pytest.raises(GatewayError, match="remote"):
            proto.raise_remote_error("ReproError" + "x", "msg")

    def test_empty_reply_rejected(self):
        with pytest.raises(ProtocolError, match="empty"):
            proto.decode_reply(b"")

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtocolError, match="status"):
            proto.decode_reply(b"\x02")

    def test_truncated_error_reply_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            proto.decode_reply(b"\x01\x05")


class TestSocketHelpers:
    def test_send_recv_round_trip(self):
        server, client = socket.socketpair()
        try:
            payload = b"x" * 100_000
            sender = threading.Thread(
                target=proto.send_frame,
                args=(server, proto.OP_MULTIPLY, payload, 42))
            sender.start()
            op, request_id, got = proto.recv_frame(client)
            sender.join()
            assert (op, request_id, got) == (proto.OP_MULTIPLY, 42, payload)
        finally:
            server.close()
            client.close()

    def test_truncated_stream_is_typed(self):
        server, client = socket.socketpair()
        try:
            server.sendall(proto.encode_frame(proto.OP_PING, b"abcdef")[:-2])
            server.close()
            with pytest.raises(ProtocolError, match="truncated frame"):
                proto.recv_frame(client)
        finally:
            client.close()

    def test_oversized_frame_rejected_on_recv(self):
        server, client = socket.socketpair()
        try:
            server.sendall(proto.HEADER.pack(
                proto.MAGIC, proto.VERSION, proto.OP_PING, 1 << 28, 0, 0))
            with pytest.raises(FrameTooLarge):
                proto.recv_frame(client, max_frame=1 << 16)
        finally:
            server.close()
            client.close()

    def test_eof_mid_frame_is_gateway_disconnected(self):
        server, client = socket.socketpair()
        try:
            server.sendall(proto.encode_frame(proto.OP_PING, b"hello")[:-1])
            server.close()
            with pytest.raises(GatewayDisconnected):
                proto.recv_frame(client)
        finally:
            client.close()


class TestProtocolFuzz:
    """Torn, truncated and interleaved frames must fail typed, never hang.

    Every receive here runs against a socket with a short timeout: a
    hang would surface as ``socket.timeout`` (an OSError), failing the
    test rather than wedging the suite.
    """

    @staticmethod
    def _pair():
        server, client = socket.socketpair()
        client.settimeout(2.0)
        return server, client

    def test_header_split_across_reads(self):
        # a header dribbling in one byte at a time must still parse
        frame = proto.encode_frame(proto.OP_PING, b"body", request_id=9)
        server, client = self._pair()
        try:
            done = threading.Event()

            def dribble():
                for i in range(len(frame)):
                    server.sendall(frame[i:i + 1])
                done.set()

            feeder = threading.Thread(target=dribble)
            feeder.start()
            op, request_id, payload = proto.recv_frame(client)
            feeder.join()
            assert done.is_set()
            assert (op, request_id, payload) == (proto.OP_PING, 9, b"body")
        finally:
            server.close()
            client.close()

    def test_payload_truncated_at_every_byte_boundary(self):
        frame = proto.encode_frame(proto.OP_MULTIPLY, b"0123456789",
                                   request_id=1)
        for cut in range(len(frame)):
            server, client = self._pair()
            try:
                if cut:
                    server.sendall(frame[:cut])
                server.close()
                with pytest.raises(GatewayDisconnected):
                    proto.recv_frame(client)
            finally:
                client.close()

    def test_header_corrupted_at_every_byte(self):
        # flipping any header byte yields a typed refusal (magic,
        # version, op or length checks) or — when only the request id
        # or deadline changes — a clean parse; never a raw struct error
        frame = proto.encode_frame(proto.OP_PING, b"", request_id=5)
        header = frame[:proto.HEADER.size]
        for i in range(len(header)):
            mutated = bytearray(header)
            mutated[i] ^= 0xFF
            try:
                parsed = proto.parse_header(bytes(mutated),
                                            max_frame=1 << 20)
            except ProtocolError:
                continue
            op, length, _request_id, _deadline = parsed
            assert op in proto.OP_NAMES
            assert 0 <= length <= 1 << 20

    def test_interleaved_second_frame_survives_first(self):
        # two frames arriving in one burst parse back-to-back; a torn
        # *third* then fails typed without disturbing the first two
        first = proto.encode_frame(proto.OP_PING, b"a", request_id=1)
        second = proto.encode_frame(proto.OP_STATS, b"bb", request_id=2)
        third = proto.encode_frame(proto.OP_PING, b"ccc", request_id=3)
        server, client = self._pair()
        try:
            server.sendall(first + second + third[:7])
            server.close()
            assert proto.recv_frame(client)[:2] == (proto.OP_PING, 1)
            assert proto.recv_frame(client)[:2] == (proto.OP_STATS, 2)
            with pytest.raises(GatewayDisconnected):
                proto.recv_frame(client)
        finally:
            client.close()

    def test_garbage_bytes_fail_typed(self, rng):
        blob = bytes(rng.integers(0, 256, size=64, dtype=np.uint8))
        server, client = self._pair()
        try:
            server.sendall(blob)
            server.close()
            with pytest.raises(ProtocolError):
                proto.recv_frame(client)
        finally:
            client.close()
