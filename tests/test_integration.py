"""Cross-module integration tests: all systems, one truth.

The paper's evaluation hinges on every implementation computing the same
``Y = A @ X``.  These tests run the JIT (every split/ISA), every AOT
personality, and the MKL-like kernel on the same operands — including a
real dataset twin — and require bit-level agreement modulo float
accumulation order.
"""

import numpy as np
import pytest

from repro.aot.compiler import PERSONALITIES
from repro.core.runner import run_aot, run_jit, run_mkl
from repro.datasets import load
from repro.sparse import spmm_reference
from tests.conftest import random_csr


@pytest.fixture(scope="module")
def twin():
    return load("uk-2005", scale=2.0 ** -21, seed=7)


@pytest.fixture(scope="module")
def operand(twin):
    rng = np.random.default_rng(99)
    return rng.random((twin.ncols, 16), dtype=np.float32).astype(np.float32)


class TestAllSystemsAgree:
    def test_on_dataset_twin(self, twin, operand):
        expected = spmm_reference(twin, operand)
        results = {}
        for split in ("row", "nnz", "merge"):
            results[f"jit-{split}"] = run_jit(
                twin, operand, split=split, threads=3, timing=False).y
        for personality in sorted(PERSONALITIES):
            results[personality] = run_aot(
                twin, operand, personality=personality, threads=3,
                timing=False).y
        results["mkl"] = run_mkl(twin, operand, threads=3, timing=False).y
        for name, y in results.items():
            assert np.allclose(y, expected, atol=1e-3), name

    def test_scipy_agreement(self, twin, operand):
        sp = pytest.importorskip("scipy.sparse")
        expected = twin.to_scipy() @ operand
        result = run_jit(twin, operand, threads=2, timing=False)
        assert np.allclose(result.y, expected, atol=1e-3)


class TestDeterminism:
    def test_jit_bitwise_deterministic(self, twin, operand):
        a = run_jit(twin, operand, threads=4, timing=False)
        b = run_jit(twin, operand, threads=4, timing=False)
        assert np.array_equal(a.y, b.y)
        assert a.counters.instructions == b.counters.instructions
        assert a.counters.branch_misses == b.counters.branch_misses

    def test_quantum_does_not_change_result(self, rng):
        # dynamic dispatch interleaving varies with the scheduler quantum,
        # but whole-row ownership makes the output exact regardless
        from repro.core.runner import MappedOperands
        from repro.core.codegen import JitCodegen, JitKernelSpec
        from repro.machine import CpuConfig, Machine, ThreadSpec

        matrix = random_csr(rng, 60, 40, density=0.2)
        x = rng.random((40, 8)).astype(np.float32)
        expected = spmm_reference(matrix, x)
        for quantum in (1, 13, 400):
            operands = MappedOperands.create(matrix, x)
            next_addr, _ = operands.memory.map_zeros(8, "NEXT")
            spec = JitKernelSpec(
                d=8, m=matrix.nrows,
                row_ptr_addr=operands.row_ptr_addr,
                col_addr=operands.col_addr, vals_addr=operands.vals_addr,
                x_addr=operands.x_addr, y_addr=operands.y_addr,
                next_addr=next_addr, batch=8)
            program = JitCodegen(spec).build_dynamic_kernel()
            machine = Machine(operands.memory, CpuConfig(timing=False),
                              quantum=quantum)
            machine.run([ThreadSpec(program) for _ in range(4)])
            assert np.allclose(operands.y_host, expected, atol=1e-3), quantum


class TestFloatSemantics:
    def test_jit_matches_rowwise_accumulation_exactly(self, rng):
        # CCM accumulates a whole row per non-zero, in non-zero order —
        # identical to spmm_rowwise, so agreement should be bit-exact
        # (our simulated FMA rounds twice, like mul+add)
        from repro.sparse import spmm_rowwise
        matrix = random_csr(rng, 20, 15, density=0.3)
        x = rng.random((15, 8)).astype(np.float32)
        result = run_jit(matrix, x, split="nnz", threads=1, timing=False)
        assert np.array_equal(result.y, spmm_rowwise(matrix, x))


class TestCodeProperties:
    def test_jit_code_size_independent_of_matrix(self, rng):
        small = random_csr(rng, 10, 10, density=0.3)
        large = random_csr(rng, 300, 300, density=0.05)
        x_small = rng.random((10, 16)).astype(np.float32)
        x_large = rng.random((300, 16)).astype(np.float32)
        a = run_jit(small, x_small, threads=1, timing=False)
        b = run_jit(large, x_large, threads=1, timing=False)
        # specialization is on d, not on nnz: identical instruction streams
        # (byte size may differ by a few bytes of immediate-width choices
        # for the baked row count m)
        assert len(a.program.instructions) == len(b.program.instructions)
        assert abs(a.code_bytes - b.code_bytes) <= 16

    def test_jit_code_grows_with_d(self, rng):
        matrix = random_csr(rng, 20, 20, density=0.2)
        sizes = []
        for d in (8, 16, 45):
            x = rng.random((20, d)).astype(np.float32)
            sizes.append(run_jit(matrix, x, threads=1,
                                 timing=False).code_bytes)
        assert sizes[0] <= sizes[1] < sizes[2]
