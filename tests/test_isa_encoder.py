"""Encoder tests: golden byte sequences + encode/decode round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa.assembler import Assembler
from repro.isa.disasm import decode_one, disassemble
from repro.isa.encoder import encode_instruction, instruction_length
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Mem
from repro.isa.registers import gpr, regs, xmm, ymm, zmm


class TestGoldenEncodings:
    """Byte sequences verified against the Intel SDM encoding rules."""

    def test_ret(self):
        assert encode_instruction(Instruction("ret")) == b"\xc3"

    def test_nop(self):
        assert encode_instruction(Instruction("nop")) == b"\x90"

    def test_inc_r10(self):
        # REX.WB FF /0 -> 49 FF C2
        insn = Instruction("inc", (regs.r10,))
        assert encode_instruction(insn) == bytes([0x49, 0xFF, 0xC2])

    def test_mov_imm64(self):
        # REX.W B8+rdi io
        insn = Instruction("mov", (regs.rax, Imm(0x1122334455667788, 64)))
        code = encode_instruction(insn)
        assert code[:2] == bytes([0x48, 0xB8])
        assert code[2:] == (0x1122334455667788).to_bytes(8, "little")

    def test_lock_xadd(self):
        # paper Listing 1 line 7: lock xadd QWORD PTR [rdi], rsi
        insn = Instruction("xadd", (Mem(regs.rdi, size=8), regs.rsi), lock=True)
        assert encode_instruction(insn) == bytes([0xF0, 0x48, 0x0F, 0xC1, 0x37])

    def test_cmp_r10_r11(self):
        # 3B /r form: REX.WRB 3B /r -> 4D 3B D3
        insn = Instruction("cmp", (regs.r10, regs.r11))
        assert encode_instruction(insn) == bytes([0x4D, 0x3B, 0xD3])

    def test_vxorps_xmm_vex(self):
        # VEX.128.0F 57 /r, all operands xmm3
        insn = Instruction("vxorps", (xmm(3), xmm(3), xmm(3)))
        code = encode_instruction(insn)
        assert code[0] == 0xC4  # three-byte VEX
        assert code[3] == 0x57

    def test_vxorps_zmm_needs_evex(self):
        insn = Instruction("vxorps", (zmm(0), zmm(0), zmm(0)))
        code = encode_instruction(insn)
        assert code[0] == 0x62  # EVEX
        assert code[4] == 0x57

    def test_register_31_requires_evex(self):
        insn = Instruction("vbroadcastss", (zmm(31), Mem(regs.rax, size=4)))
        assert encode_instruction(insn)[0] == 0x62

    def test_vhaddps_has_no_evex_form(self):
        insn = Instruction("vhaddps", (xmm(17), xmm(17), xmm(17)))
        with pytest.raises(EncodingError):
            encode_instruction(insn)

    def test_rsp_index_rejected(self):
        with pytest.raises(EncodingError):
            encode_instruction(
                Instruction("mov", (regs.rax, Mem(regs.rbx, regs.rsp, 1, 0, size=8)))
            )

    def test_branch_lengths_fixed(self):
        assert instruction_length(Instruction("jmp", ("x",))) == 5
        assert instruction_length(Instruction("jge", ("x",))) == 6


class TestMemForms:
    def test_rbp_base_gets_disp(self):
        # [rbp] must encode as [rbp+disp8 0] (mod=01)
        insn = Instruction("mov", (regs.rax, Mem(regs.rbp, size=8)))
        decoded = decode_one(encode_instruction(insn)).instruction
        mem = decoded.operands[1]
        assert mem.base == regs.rbp and mem.disp == 0

    def test_r12_base_needs_sib(self):
        insn = Instruction("mov", (regs.rax, Mem(regs.r12, size=8)))
        decoded = decode_one(encode_instruction(insn)).instruction
        assert decoded.operands[1].base == regs.r12

    def test_rsp_base(self):
        insn = Instruction("mov", (regs.rax, Mem(regs.rsp, disp=8, size=8)))
        decoded = decode_one(encode_instruction(insn)).instruction
        assert decoded.operands[1].base == regs.rsp
        assert decoded.operands[1].disp == 8

    def test_32bit_load_drops_rex_w(self):
        insn = Instruction("mov", (regs.rax, Mem(regs.rbx, size=4)))
        code = encode_instruction(insn)
        assert code[0] == 0x8B  # no REX needed at all
        decoded = decode_one(code).instruction
        assert decoded.operands[1].size == 4

    def test_large_disp(self):
        insn = Instruction("mov", (regs.rax, Mem(regs.rbx, disp=1 << 20, size=8)))
        decoded = decode_one(encode_instruction(insn)).instruction
        assert decoded.operands[1].disp == 1 << 20

    def test_negative_disp8(self):
        insn = Instruction("mov", (regs.rax, Mem(regs.rbx, disp=-16, size=8)))
        decoded = decode_one(encode_instruction(insn)).instruction
        assert decoded.operands[1].disp == -16


class TestProgramEncoding:
    def test_backward_and_forward_branches(self):
        asm = Assembler("branches")
        asm.mov(regs.rcx, 0)
        asm.label("loop")
        asm.inc(regs.rcx)
        asm.cmp(regs.rcx, 10)
        asm.jge("done")
        asm.jmp("loop")
        asm.label("done")
        asm.ret()
        program = asm.finish()
        decoded = disassemble(program.encode())
        assert len(decoded) == len(program.instructions)
        # the jmp must point back at the inc instruction's offset
        jmp = next(d for d in decoded if d.instruction.mnemonic == "jmp")
        inc = next(d for d in decoded if d.instruction.mnemonic == "inc")
        assert jmp.instruction.operands[0].value == inc.offset
        # the jge must point at the ret
        jge = next(d for d in decoded if d.instruction.mnemonic == "jge")
        ret = next(d for d in decoded if d.instruction.mnemonic == "ret")
        assert jge.instruction.operands[0].value == ret.offset

    def test_branch_to_end_label(self):
        asm = Assembler()
        asm.jmp("end")
        asm.label("end")
        program = asm.finish()
        decoded = disassemble(program.encode())
        assert decoded[0].instruction.operands[0].value == len(program.encode())


# ----------------------------------------------------------------------
# Property-based round-trip: encode -> decode -> re-encode must be stable
# ----------------------------------------------------------------------

_GPRS = st.sampled_from([gpr(i) for i in range(16)])
_XMM = st.builds(xmm, st.integers(0, 15))
_VECS = st.one_of(
    st.builds(xmm, st.integers(0, 31)),
    st.builds(ymm, st.integers(0, 31)),
    st.builds(zmm, st.integers(0, 31)),
)
_SCALE = st.sampled_from([1, 2, 4, 8])
_DISP = st.sampled_from([0, 4, 8, 64, 127, 128, -8, -128, 4096])
_BASE = st.sampled_from([gpr(i) for i in range(16)])
_INDEX = st.sampled_from([None] + [gpr(i) for i in range(16) if i != 4])


@st.composite
def int_mem(draw, size=8):
    return Mem(draw(_BASE), draw(_INDEX), draw(_SCALE), draw(_DISP), size)


@st.composite
def int_instruction(draw):
    choice = draw(st.integers(0, 6))
    if choice == 0:
        return Instruction("mov", (draw(_GPRS), draw(int_mem())))
    if choice == 1:
        return Instruction("mov", (draw(int_mem()), draw(_GPRS)))
    if choice == 2:
        name = draw(st.sampled_from(["add", "sub", "and", "or", "xor", "cmp"]))
        return Instruction(name, (draw(_GPRS), draw(_GPRS)))
    if choice == 3:
        name = draw(st.sampled_from(["add", "sub", "cmp"]))
        value = draw(st.sampled_from([1, 100, 1000, -5]))
        return Instruction(name, (draw(_GPRS), Imm(value)))
    if choice == 4:
        return Instruction("lea", (draw(_GPRS), draw(int_mem())))
    if choice == 5:
        name = draw(st.sampled_from(["inc", "dec", "neg"]))
        return Instruction(name, (draw(_GPRS),))
    return Instruction("imul", (draw(_GPRS), draw(_GPRS), Imm(draw(
        st.sampled_from([2, 4, 100, 1000])))))


@st.composite
def vec_instruction(draw):
    choice = draw(st.integers(0, 4))
    if choice == 0:
        width = draw(st.sampled_from([xmm, ymm, zmm]))
        a, b, c = (width(draw(st.integers(0, 31))) for _ in range(3))
        name = draw(st.sampled_from(["vaddps", "vmulps", "vsubps", "vxorps"]))
        if name == "vhaddps":
            a, b, c = xmm(a.code % 16), xmm(b.code % 16), xmm(c.code % 16)
        return Instruction(name, (a, b, c))
    if choice == 1:
        width = draw(st.sampled_from([xmm, ymm, zmm]))
        reg = width(draw(st.integers(0, 31)))
        mem = Mem(draw(_BASE), draw(_INDEX), draw(_SCALE), draw(_DISP),
                  reg.width // 8)
        direction = draw(st.booleans())
        if direction:
            return Instruction("vmovups", (reg, mem))
        return Instruction("vmovups", (mem, reg))
    if choice == 2:
        width = draw(st.sampled_from([xmm, ymm, zmm]))
        reg = width(draw(st.integers(0, 31)))
        mem = Mem(draw(_BASE), draw(_INDEX), draw(_SCALE), draw(_DISP), 4)
        return Instruction("vbroadcastss", (reg, mem))
    if choice == 3:
        width = draw(st.sampled_from([xmm, ymm, zmm]))
        dst = width(draw(st.integers(0, 31)))
        a = width(draw(st.integers(0, 31)))
        mem = Mem(draw(_BASE), draw(_INDEX), draw(_SCALE), draw(_DISP),
                  dst.width // 8)
        return Instruction("vfmadd231ps", (dst, a, mem))
    dst = xmm(draw(st.integers(0, 15)))
    mem = Mem(draw(_BASE), None, 1, draw(_DISP), 4)
    direction = draw(st.booleans())
    if direction:
        return Instruction("vmovss", (dst, mem))
    return Instruction("vmovss", (mem, dst))


@settings(max_examples=300, deadline=None)
@given(insn=st.one_of(int_instruction(), vec_instruction()))
def test_property_encode_decode_reencode(insn):
    code = encode_instruction(insn)
    decoded = decode_one(code)
    assert decoded.length == len(code)
    recoded = encode_instruction(decoded.instruction)
    assert recoded == code, (
        f"{insn} -> {code.hex()} -> {decoded.instruction} -> {recoded.hex()}"
    )


@settings(max_examples=50, deadline=None)
@given(insns=st.lists(st.one_of(int_instruction(), vec_instruction()),
                      min_size=1, max_size=20))
def test_property_stream_decode(insns):
    asm = Assembler("stream")
    for insn in insns:
        asm.emit(insn.mnemonic, *insn.operands, lock=insn.lock)
    asm.ret()
    program = asm.finish()
    decoded = disassemble(program.encode())
    assert len(decoded) == len(insns) + 1
    assert decoded[-1].instruction.mnemonic == "ret"
    mnemonics = [d.instruction.mnemonic for d in decoded[:-1]]
    assert mnemonics == [insn.mnemonic for insn in insns]
