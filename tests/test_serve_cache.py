"""Tests for the kernel cache (repro.serve.cache)."""

import threading

import pytest

from repro.core.codegen import JitCodegen
from repro.core.runner import PLACEHOLDER_ADDRESSES, make_jit_spec, run_jit
from repro.serve.cache import KernelCache, KernelKey, aot_key, jit_key
from tests.conftest import random_csr


def spec_for(d=16, m=32, batch=8, isa="avx512", next_addr=0x60000):
    return make_jit_spec(d, m, PLACEHOLDER_ADDRESSES,
                         next_addr=next_addr, batch=batch, isa=isa)


class TestKeys:
    def test_same_spec_same_key(self):
        assert jit_key(spec_for(), True) == jit_key(spec_for(), True)

    @pytest.mark.parametrize("other", [
        dict(d=32), dict(m=64), dict(batch=4), dict(isa="avx2"),
        dict(next_addr=0x70000),
    ])
    def test_any_identity_field_changes_key(self, other):
        assert jit_key(spec_for(), True) != jit_key(spec_for(**other), True)

    def test_dynamic_flag_changes_key(self):
        assert jit_key(spec_for(), True) != jit_key(spec_for(), False)

    def test_aot_key_is_address_free(self):
        assert aot_key("gcc") == aot_key("gcc")
        assert aot_key("gcc") != aot_key("icc")


class TestLru:
    def test_hit_returns_same_object(self):
        cache = KernelCache()
        spec = spec_for()
        output = JitCodegen(spec).generate(dynamic=True)
        cache.put_jit(spec, True, output)
        assert cache.get_jit(spec, True) is output
        assert cache.get_jit(spec, True) is output  # stable across hits

    def test_miss_returns_none_and_counts(self):
        cache = KernelCache()
        assert cache.get(KernelKey(kind="jit-range", d=3)) is None
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 1)
        assert stats.hit_rate == 0.0

    def test_byte_budget_evicts_lru(self):
        cache = KernelCache(budget_bytes=100)
        keys = [KernelKey(kind="jit-range", d=d) for d in (1, 2, 3)]
        for key in keys:
            cache.put(key, f"kernel-{key.d}", 40)
        # 120 B > 100 B: the least recently used entry (d=1) is gone
        assert cache.get(keys[0]) is None
        assert cache.get(keys[1]) == "kernel-2"
        assert cache.get(keys[2]) == "kernel-3"
        assert cache.stats().evictions == 1
        assert cache.nbytes == 80

    def test_get_refreshes_recency(self):
        cache = KernelCache(budget_bytes=100)
        keys = [KernelKey(kind="jit-range", d=d) for d in (1, 2, 3)]
        cache.put(keys[0], "a", 40)
        cache.put(keys[1], "b", 40)
        cache.get(keys[0])          # touch: now keys[1] is LRU
        cache.put(keys[2], "c", 40)
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) == "a"

    def test_oversized_entry_survives_alone(self):
        cache = KernelCache(budget_bytes=10)
        key = KernelKey(kind="jit-range", d=1)
        cache.put(key, "big", 1000)
        assert cache.get(key) == "big"
        assert len(cache) == 1

    def test_replacing_entry_updates_bytes(self):
        cache = KernelCache()
        key = KernelKey(kind="jit-range", d=1)
        cache.put(key, "a", 40)
        cache.put(key, "b", 10)
        assert cache.nbytes == 10
        assert len(cache) == 1

    def test_max_entries(self):
        cache = KernelCache(max_entries=2)
        for d in (1, 2, 3):
            cache.put(KernelKey(kind="jit-range", d=d), d, 1)
        assert len(cache) == 2
        assert KernelKey(kind="jit-range", d=1) not in cache

    def test_peek_does_not_count(self):
        cache = KernelCache()
        key = KernelKey(kind="jit-range", d=1)
        assert cache.peek(key) is None
        cache.put(key, "a", 40)
        assert cache.peek(key) == "a"
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_discard(self):
        cache = KernelCache()
        key = KernelKey(kind="jit-range", d=1)
        cache.put(key, "a", 40)
        assert cache.discard(key)
        assert not cache.discard(key)
        assert len(cache) == 0 and cache.nbytes == 0
        assert cache.stats().evictions == 0

    def test_clear(self):
        cache = KernelCache()
        cache.put(KernelKey(kind="jit-range", d=1), "a", 40)
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            KernelCache(budget_bytes=0)
        with pytest.raises(ValueError):
            KernelCache(max_entries=-1)

    def test_concurrent_access_consistent(self):
        cache = KernelCache(budget_bytes=400)
        errors = []

        def worker(base):
            try:
                for i in range(50):
                    key = KernelKey(kind="jit-range", d=base * 100 + i)
                    cache.put(key, i, 10)
                    cache.get(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.nbytes <= 400


class TestRunnerIntegration:
    def test_run_jit_reuses_cached_program(self, rng):
        matrix = random_csr(rng, 30, 25, density=0.2)
        x = rng.random((25, 8)).astype("float32")
        cache = KernelCache()
        first = run_jit(matrix, x, threads=2, timing=False, cache=cache)
        second = run_jit(matrix, x, threads=2, timing=False, cache=cache)
        assert not first.cache_hit and second.cache_hit
        assert second.program is first.program
        assert second.codegen_seconds == 0.0
        assert first.codegen_seconds > 0.0

    def test_cached_result_bit_equal(self, rng):
        import numpy as np
        matrix = random_csr(rng, 30, 25, density=0.2)
        x = rng.random((25, 8)).astype("float32")
        cache = KernelCache()
        for split in ("row", "nnz", "merge"):
            fresh = run_jit(matrix, x, split=split, threads=2, timing=False)
            cached = run_jit(matrix, x, split=split, threads=2,
                             timing=False, cache=cache)
            warm = run_jit(matrix, x, split=split, threads=2,
                           timing=False, cache=cache)
            assert warm.cache_hit
            assert np.array_equal(fresh.y, cached.y)
            assert np.array_equal(cached.y, warm.y)

    def test_different_shape_is_a_miss(self, rng):
        matrix = random_csr(rng, 30, 25, density=0.2)
        cache = KernelCache()
        run_jit(matrix, rng.random((25, 8)).astype("float32"),
                threads=2, timing=False, cache=cache)
        wider = run_jit(matrix, rng.random((25, 16)).astype("float32"),
                        threads=2, timing=False, cache=cache)
        assert not wider.cache_hit
        assert len(cache) == 2

    def test_run_aot_caches_personality(self, rng):
        from repro.core.runner import run_aot
        matrix = random_csr(rng, 20, 20, density=0.2)
        x = rng.random((20, 4)).astype("float32")
        cache = KernelCache()
        a = run_aot(matrix, x, threads=2, timing=False, cache=cache)
        b = run_aot(matrix, x, threads=2, timing=False, cache=cache)
        assert b.program is a.program
        assert not a.cache_hit and b.cache_hit
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1


class TestShardedKernelCache:
    def _keys(self, count):
        return [KernelKey(kind="jit-range", d=d) for d in range(1, count + 1)]

    def test_roundtrip_and_len(self):
        from repro.serve import ShardedKernelCache
        cache = ShardedKernelCache(shards=4)
        keys = self._keys(16)
        for index, key in enumerate(keys):
            cache.put(key, f"kernel-{index}", 10)
        assert len(cache) == 16
        assert cache.nbytes == 160
        for index, key in enumerate(keys):
            assert key in cache
            assert cache.get(key) == f"kernel-{index}"

    def test_budget_divided_across_shards(self):
        from repro.serve import ShardedKernelCache
        cache = ShardedKernelCache(budget_bytes=801, shards=4)
        budgets = sorted(shard.budget_bytes for shard in cache.shards)
        assert sum(budgets) == 801
        assert budgets == [200, 200, 200, 201]

    def test_eviction_is_per_shard(self):
        from repro.serve import ShardedKernelCache
        cache = ShardedKernelCache(budget_bytes=80, shards=2)
        for key in self._keys(12):
            cache.put(key, "k", 15)
        stats = cache.stats()
        assert stats.evictions > 0
        # every shard respects its own slice of the budget
        for shard in cache.shards:
            assert shard.nbytes <= shard.budget_bytes or len(shard) == 1

    def test_stats_aggregate(self):
        from repro.serve import ShardedKernelCache
        cache = ShardedKernelCache(budget_bytes=1000, shards=4)
        keys = self._keys(8)
        for key in keys:
            cache.put(key, "k", 10)
        for key in keys:
            assert cache.get(key) == "k"
        assert cache.get(KernelKey(kind="jit-range", d=99)) is None
        stats = cache.stats()
        assert stats.hits == 8 and stats.misses == 1
        assert stats.entries == 8
        assert stats.budget_bytes == 1000

    def test_peek_and_discard_route_to_shard(self):
        from repro.serve import ShardedKernelCache
        cache = ShardedKernelCache(shards=3)
        key = KernelKey(kind="jit-range", d=7)
        cache.put(key, "k", 5)
        assert cache.peek(key) == "k"
        assert cache.stats().hits == 0          # peek is uncounted
        assert cache.discard(key)
        assert not cache.discard(key)
        assert key not in cache

    def test_typed_wrappers_shared_with_plain_cache(self):
        from repro.serve import ShardedKernelCache
        cache = ShardedKernelCache(shards=2)
        spec = spec_for()
        output = JitCodegen(spec).generate(dynamic=True)
        cache.put_jit(spec, True, output)
        assert cache.get_jit(spec, True) is output
        assert cache.get_jit(spec, False) is None

    def test_clear_empties_every_shard(self):
        from repro.serve import ShardedKernelCache
        cache = ShardedKernelCache(shards=2)
        for key in self._keys(6):
            cache.put(key, "k", 5)
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0

    def test_invalid_configuration_rejected(self):
        from repro.serve import ShardedKernelCache
        with pytest.raises(ValueError):
            ShardedKernelCache(shards=0)
        with pytest.raises(ValueError):
            ShardedKernelCache(budget_bytes=4, shards=8)
        with pytest.raises(ValueError):
            ShardedKernelCache(max_entries=2, shards=4)

    def test_serves_run_jit_like_plain_cache(self, rng):
        from repro.serve import ShardedKernelCache
        import numpy as np
        matrix = random_csr(rng, 30, 25, density=0.2)
        x = rng.random((25, 8)).astype("float32")
        cache = ShardedKernelCache(shards=4)
        cold = run_jit(matrix, x, threads=2, timing=False, cache=cache)
        warm = run_jit(matrix, x, threads=2, timing=False, cache=cache)
        assert not cold.cache_hit and warm.cache_hit
        assert np.array_equal(cold.y, warm.y)
