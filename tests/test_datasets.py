"""Tests for the dataset generators and the Table III twin registry."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    corpus_graph,
    load,
    mycielskian,
    power_law_graph,
    rmat,
    spec,
    summary_table,
    uniform_random,
)
from repro.errors import DatasetError


class TestGenerators:
    def test_uniform_shape_and_determinism(self):
        a = uniform_random(100, 1000, seed=3)
        b = uniform_random(100, 1000, seed=3)
        assert a.shape == (100, 100)
        assert np.array_equal(a.vals, b.vals)
        assert np.array_equal(a.col_indices, b.col_indices)

    def test_uniform_rejects_bad_shape(self):
        with pytest.raises(DatasetError):
            uniform_random(0, 10)

    def test_uniform_is_balanced(self):
        mat = uniform_random(200, 6000, seed=1)
        assert mat.gini_row_imbalance() < 0.25

    def test_rmat_is_skewed(self):
        mat = rmat(9, 8000, seed=1)
        assert mat.shape == (512, 512)
        assert mat.gini_row_imbalance() > 0.5

    def test_rmat_validates(self):
        with pytest.raises(DatasetError):
            rmat(0, 100)
        with pytest.raises(DatasetError):
            rmat(5, 100, a=0.6, b=0.3, c=0.3)

    def test_power_law_is_skewed(self):
        mat = power_law_graph(300, 7000, alpha=1.9, seed=2)
        assert mat.gini_row_imbalance() > 0.35

    def test_power_law_validates(self):
        with pytest.raises(DatasetError):
            power_law_graph(10, 100, alpha=1.0)
        with pytest.raises(DatasetError):
            power_law_graph(10, 100, locality=2.0)

    def test_corpus_high_degree(self):
        mat = corpus_graph(200, 8000, seed=2)
        assert mat.mean_row_length() > 10

    def test_mycielskian_sizes(self):
        # M_k has 3 * 2^(k-2) - 1 vertices
        for k in (2, 3, 4, 7):
            mat = mycielskian(k)
            assert mat.nrows == 3 * 2 ** (k - 2) - 1

    def test_mycielskian_symmetric(self):
        mat = mycielskian(5)
        dense = (mat.to_dense() != 0)
        assert np.array_equal(dense, dense.T)
        assert not dense.diagonal().any()  # triangle-free family, no loops

    def test_mycielskian_validates(self):
        with pytest.raises(DatasetError):
            mycielskian(1)


class TestSuite:
    def test_all_fourteen_registered(self):
        assert len(DATASET_NAMES) == 14
        assert "uk-2005" in DATASET_NAMES
        assert "AGATHA_2015" in DATASET_NAMES

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            spec("enron")

    def test_paper_shapes_recorded(self):
        entry = spec("uk-2005")
        assert entry.paper_rows == 39_459_925
        assert entry.paper_nnz == 936_364_282

    def test_load_caches(self):
        assert load("uk-2005") is load("uk-2005")

    def test_twins_are_square(self):
        twin = load("GAP-kron")
        assert twin.nrows == twin.ncols

    @pytest.mark.parametrize("name", [n for n in DATASET_NAMES
                                      if "mycielskian" not in n
                                      and n != "MOLIERE_2016"])
    def test_mean_row_length_preserved(self, name):
        entry = spec(name)
        twin = load(name)
        ratio = twin.mean_row_length() / entry.paper_mean_row
        assert 0.6 < ratio < 1.7, (
            f"{name}: twin mean {twin.mean_row_length():.1f} vs paper "
            f"{entry.paper_mean_row:.1f}"
        )

    def test_nnz_ordering_roughly_preserved(self):
        # Table III is sorted by nnz; the twins (excluding the exact
        # Mycielskian constructions, which cannot be freely sized) should
        # keep a growing trend
        names = [n for n in DATASET_NAMES if "mycielskian" not in n]
        sizes = [load(name).nnz for name in names]
        bigger = sum(b >= a for a, b in zip(sizes, sizes[1:]))
        assert bigger >= len(sizes) - 3
        # the span of the suite is preserved: largest twin dwarfs smallest
        assert max(sizes) > 8 * min(sizes)

    def test_skewed_families_are_skewed(self):
        assert load("GAP-twitter").gini_row_imbalance() > 0.4
        assert load("GAP-urand").gini_row_imbalance() < 0.2

    def test_summary_table_renders(self):
        table = summary_table()
        assert "uk-2005" in table
        assert "AGATHA_2015" in table
