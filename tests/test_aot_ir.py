"""Tests for the IR, builder, and structural validation."""

import pytest

from repro.aot.builder import IRBuilder
from repro.aot.ir import Function, Instr, IrType, VReg
from repro.errors import CompileError


def loop_function() -> Function:
    b = IRBuilder("loop", 1, ("n",))
    i = b.const(0, "i")
    total = b.const(0, "total")
    b.br("head")
    b.start_block("head", depth=1)
    b.cbr("ge", i, b.param(0), "exit", "body")
    b.start_block("body", depth=1)
    b.iadd(total, i)
    b.iadd(i, 1)
    b.br("head")
    b.start_block("exit")
    b.ret()
    return b.finish()


class TestInstr:
    def test_unknown_op_rejected(self):
        with pytest.raises(CompileError):
            Instr("frobnicate")

    def test_bad_cbr_condition(self):
        with pytest.raises(CompileError):
            Instr("cbr", None, (), {"cond": "whatever",
                                    "then_label": "a", "else_label": "b"})

    def test_reads_include_address_registers(self):
        base = VReg("p", IrType.I64)
        index = VReg("i", IrType.I64)
        load = Instr("load", VReg("d", IrType.I64), (),
                     {"base": base, "index": index, "scale": 8, "disp": 0,
                      "size": 8})
        assert set(load.vregs_read()) == {base, index}

    def test_fma_reads_destination(self):
        acc = VReg("acc", IrType.V16F)
        a = VReg("a", IrType.V16F)
        b = VReg("b", IrType.V16F)
        fma = Instr("vfma", acc, (a, b))
        assert acc in fma.vregs_read()

    def test_zero_idiom_reads_nothing(self):
        v = VReg("z", IrType.V16F)
        zero = Instr("vadd", v, (v, v), {"zero": True})
        assert zero.vregs_read() == ()

    def test_vreg_identity_hash(self):
        a = VReg("x", IrType.I64)
        b = VReg("x", IrType.I64)
        assert a != b  # identity semantics: same name, distinct registers


class TestFunction:
    def test_builder_produces_valid_function(self):
        func = loop_function()
        func.validate()
        assert [b.label for b in func.blocks] == ["entry", "head", "body", "exit"]

    def test_successors(self):
        func = loop_function()
        blocks = func.block_map()
        assert blocks["entry"].successors() == ("head",)
        assert set(blocks["head"].successors()) == {"exit", "body"}
        assert blocks["exit"].successors() == ()

    def test_block_depth_recorded(self):
        func = loop_function()
        assert func.block_map()["body"].depth == 1
        assert func.block_map()["exit"].depth == 0

    def test_missing_terminator_detected(self):
        func = Function("bad")
        func.block("entry").instrs.append(Instr("const", VReg("x", IrType.I64), (1,)))
        with pytest.raises(CompileError):
            func.validate()

    def test_branch_to_unknown_block(self):
        func = Function("bad")
        func.block("entry").instrs.append(Instr("br", None, (), {"label": "nope"}))
        with pytest.raises(CompileError):
            func.validate()

    def test_terminator_mid_block_detected(self):
        func = Function("bad")
        entry = func.block("entry")
        entry.instrs.append(Instr("ret"))
        entry.instrs.append(Instr("ret"))
        with pytest.raises(CompileError):
            func.validate()

    def test_all_vregs_collects_params(self):
        func = loop_function()
        names = {v.name for v in func.all_vregs()}
        assert "n" in names

    def test_listing_renders(self):
        listing = loop_function().listing()
        assert "func loop" in listing
        assert "head:" in listing
