"""Tests for the ``python -m repro.bench`` command-line interface."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_experiments_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table2", "table4", "fig9", "fig10", "fig11", "ablations",
            "serving", "simspeed", "servethroughput", "obsoverhead",
            "passsearch", "chaos"}

    def test_runs_simspeed_experiment(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "uk-2005")
        monkeypatch.setenv("REPRO_BENCH_THREADS", "2")
        json_path = tmp_path / "BENCH_simspeed.json"
        monkeypatch.setenv("REPRO_BENCH_SIMSPEED_JSON", str(json_path))
        exit_code = main(["simspeed", "--scale", str(2.0 ** -22)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Simspeed" in out
        assert "sim-fused" in out
        import json
        payload = json.loads(json_path.read_text())
        assert payload["experiment"] == "simspeed"
        backends = {row["backend"] for row in payload["rows"]}
        assert backends == {"native", "counts", "sim-ref", "sim",
                            "sim-fused"}
        # the instruction streams must agree between the simulators
        counts = {row["backend"]: row["instructions"]
                  for row in payload["rows"]}
        assert counts["counts"] == counts["sim"] == counts["sim-fused"]
        assert "sim-fused" in payload["speedup_vs_sim"]

    def test_runs_passsearch_experiment(self, capsys, monkeypatch,
                                        tmp_path):
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "uk-2005")
        monkeypatch.setenv("REPRO_BENCH_THREADS", "1")
        monkeypatch.setenv("REPRO_BENCH_PASSSEARCH_BUDGET", "4")
        json_path = tmp_path / "BENCH_passsearch.json"
        monkeypatch.setenv("REPRO_BENCH_PASSSEARCH_JSON", str(json_path))
        exit_code = main(["passsearch", "--scale", str(2.0 ** -22)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Passsearch" in out
        import json
        payload = json.loads(json_path.read_text())
        assert payload["experiment"] == "passsearch"
        personalities = {row["personality"] for row in payload["rows"]}
        assert personalities == {"gcc", "clang", "icc", "icc-avx512"}
        for row in payload["rows"]:
            assert row["cycles_searched"] <= row["cycles_fixed"]
            assert row["bit_identical"]
        assert payload["summary"]["never_regressed"]

    def test_runs_servethroughput_experiment(self, capsys, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "uk-2005")
        monkeypatch.setenv("REPRO_BENCH_THREADS", "2")
        monkeypatch.setenv("REPRO_BENCH_SERVE_CLIENTS", "2")
        monkeypatch.setenv("REPRO_BENCH_SERVE_REQUESTS", "8")
        json_path = tmp_path / "BENCH_servethroughput.json"
        monkeypatch.setenv("REPRO_BENCH_SERVETHROUGHPUT_JSON",
                           str(json_path))
        exit_code = main(["servethroughput", "--scale", str(2.0 ** -22)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Serve throughput" in out
        import json
        payload = json.loads(json_path.read_text())
        assert payload["experiment"] == "servethroughput"
        cells = {(row["backend"], row["max_batch"])
                 for row in payload["rows"]}
        assert cells == {("native", 1), ("native", 8), ("native", 32),
                         ("counts", 1)}
        for row in payload["rows"]:
            assert row["rps"] > 0
            assert row["p99_ms"] >= row["p50_ms"]
        assert payload["speedup_coalesced"] > 0

    def test_runs_obsoverhead_experiment(self, capsys, monkeypatch,
                                         tmp_path):
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "uk-2005")
        monkeypatch.setenv("REPRO_BENCH_THREADS", "2")
        monkeypatch.setenv("REPRO_BENCH_OBS_CLIENTS", "2")
        monkeypatch.setenv("REPRO_BENCH_OBS_REQUESTS", "8")
        json_path = tmp_path / "BENCH_obsoverhead.json"
        trace_path = tmp_path / "BENCH_obsoverhead_trace.json"
        monkeypatch.setenv("REPRO_BENCH_OBSOVERHEAD_JSON", str(json_path))
        monkeypatch.setenv("REPRO_BENCH_OBS_TRACE_JSON", str(trace_path))
        exit_code = main(["obsoverhead", "--scale", str(2.0 ** -22)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Observability overhead" in out
        import json
        payload = json.loads(json_path.read_text())
        assert payload["experiment"] == "obsoverhead"
        assert {row["mode"] for row in payload["rows"]} == {
            "tracing off", "tracing on"}
        assert payload["disabled_span_ns"] > 0
        assert payload["overhead_pct"] >= 0
        # the archived trace is loadable Chrome-trace JSON with real
        # serving spans in it
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        assert "serve.multiply" in names
        # the bench must not leave the process-wide tracer enabled
        import repro.obs as obs
        assert not obs.tracing_enabled()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure42"])

    def test_runs_selected_experiment(self, capsys, monkeypatch):
        # tiny configuration so the CLI test stays fast
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "uk-2005")
        monkeypatch.setenv("REPRO_BENCH_THREADS", "2")
        exit_code = main(["table2", "--scale", str(2.0 ** -22)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "Table II" in out

    def test_runs_serving_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "uk-2005")
        monkeypatch.setenv("REPRO_BENCH_THREADS", "2")
        exit_code = main(["serving", "--scale", str(2.0 ** -22)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Serving amortization" in out
        assert "kernel cache" in out
