"""Tests for warm-run measurement (Machine.run(warmup=True))."""

import numpy as np

from repro.core.runner import run_jit
from repro.isa.assembler import Assembler
from repro.isa.operands import Imm, Mem
from repro.isa.registers import regs, zmm
from repro.machine import CpuConfig, Machine, Memory, ThreadSpec
from repro.sparse import spmm_reference
from tests.conftest import random_csr


def streaming_program(base: int, lines: int):
    """Touch `lines` cache lines, 64 bytes apart."""
    asm = Assembler("stream")
    asm.mov(regs.rax, Imm(base, 64))
    asm.mov(regs.rcx, 0)
    asm.label("loop")
    asm.cmp(regs.rcx, lines)
    asm.jge("done")
    asm.mov(regs.rdx, regs.rcx)
    asm.shl(regs.rdx, 6)
    asm.vmovups(zmm(0), Mem(regs.rax, regs.rdx, 1, 0, size=64))
    asm.inc(regs.rcx)
    asm.jmp("loop")
    asm.label("done")
    asm.ret()
    return asm.finish()


class TestWarmup:
    def test_warm_run_has_fewer_misses(self):
        lines = 32
        results = {}
        for warmup in (False, True):
            mem = Memory()
            base = mem.map_array(np.zeros(64 * lines, dtype=np.uint8))
            program = streaming_program(base, lines)
            machine = Machine(mem, CpuConfig(timing=True))
            merged, _ = machine.run([ThreadSpec(program)], warmup=warmup)
            results[warmup] = merged
        cold, warm = results[False], results[True]
        assert cold.l1_misses >= lines          # every line cold-missed
        assert warm.l1_misses == 0              # fully warmed
        assert warm.cycles < cold.cycles
        # event counts other than cache/branch state are identical
        assert warm.instructions == cold.instructions
        assert warm.memory_loads == cold.memory_loads

    def test_warm_predictor_reduces_misses(self):
        # use the PC-indexed two-bit predictor: unlike gshare (whose
        # global history crosses the warmup boundary), its warm state is
        # strictly no worse than cold
        config = CpuConfig(timing=True, predictor="two_bit")
        mem = Memory()
        base = mem.map_array(np.zeros(64 * 16, dtype=np.uint8))
        program = streaming_program(base, 16)
        cold, _ = Machine(mem, config).run([ThreadSpec(program)])
        mem2 = Memory()
        base2 = mem2.map_array(np.zeros(64 * 16, dtype=np.uint8))
        warm, _ = Machine(mem2, config).run(
            [ThreadSpec(streaming_program(base2, 16))], warmup=True)
        assert warm.branch_misses <= cold.branch_misses

    def test_between_runs_hook_called(self):
        mem = Memory()
        base = mem.map_array(np.zeros(64 * 4, dtype=np.uint8))
        program = streaming_program(base, 4)
        machine = Machine(mem, CpuConfig(timing=True))
        calls = []
        machine.run([ThreadSpec(program)], warmup=True,
                    between_runs=lambda: calls.append(1))
        assert calls == [1]

    def test_counts_mode_ignores_warmup_flag(self):
        mem = Memory()
        base = mem.map_array(np.zeros(64 * 4, dtype=np.uint8))
        program = streaming_program(base, 4)
        machine = Machine(mem, CpuConfig(timing=False))
        merged, _ = machine.run([ThreadSpec(program)])
        assert merged.cycles == 0


class TestWarmJitRuns:
    def test_dynamic_dispatch_correct_after_warmup(self, rng):
        # warmup runs the xadd dispatcher once; the NEXT counter must be
        # reset before the measured run or no rows would be processed
        matrix = random_csr(rng, 50, 40, density=0.2)
        x = rng.random((40, 8)).astype(np.float32)
        result = run_jit(matrix, x, split="row", threads=3, dynamic=True,
                         timing=True, warmup=True)
        assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-3)
        assert result.counters.instructions > 0

    def test_warm_counts_equal_cold_counts(self, rng):
        matrix = random_csr(rng, 30, 30, density=0.2)
        x = rng.random((30, 16)).astype(np.float32)
        cold = run_jit(matrix, x, split="nnz", threads=2, timing=True)
        warm = run_jit(matrix, x, split="nnz", threads=2, timing=True,
                       warmup=True)
        assert warm.counters.instructions == cold.counters.instructions
        assert warm.counters.memory_loads == cold.counters.memory_loads
        assert warm.counters.cycles < cold.counters.cycles
