"""Tests for the centralized ExecutionConfig contract."""

import pytest

from repro.api import ExecutionConfig
from repro.errors import ShapeError
from repro.isa.isainfo import IsaLevel


class TestValidation:
    def test_defaults(self):
        config = ExecutionConfig()
        assert config.split == "row"
        assert config.threads == 1
        assert config.dynamic is None
        assert config.batch is None
        assert config.isa == IsaLevel.AVX512
        assert config.timing and not config.warmup
        assert config.cache is None

    def test_rejects_nonpositive_threads(self):
        with pytest.raises(ShapeError):
            ExecutionConfig(threads=0)
        with pytest.raises(ShapeError):
            ExecutionConfig(threads=-3)

    def test_rejects_unknown_split(self):
        with pytest.raises(ShapeError):
            ExecutionConfig(split="diagonal")

    def test_rejects_dynamic_with_non_row_split(self):
        with pytest.raises(ShapeError):
            ExecutionConfig(split="nnz", dynamic=True)
        with pytest.raises(ShapeError):
            ExecutionConfig(split="merge", dynamic=True)

    def test_auto_split_requires_dynamic_none(self):
        with pytest.raises(ShapeError):
            ExecutionConfig(split="auto", dynamic=True)
        with pytest.raises(ShapeError):
            ExecutionConfig(split="auto", dynamic=False)
        assert ExecutionConfig(split="auto").split == "auto"

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ShapeError):
            ExecutionConfig(batch=0)

    def test_explicit_dynamic_false_with_row_allowed(self):
        config = ExecutionConfig(split="row", dynamic=False)
        assert config.effective_dynamic is False


class TestNormalization:
    def test_isa_parsed_from_string(self):
        assert ExecutionConfig(isa="avx2").isa == IsaLevel.AVX2
        assert ExecutionConfig(isa="scalar").isa == IsaLevel.SCALAR

    def test_effective_dynamic_defaults_per_split(self):
        assert ExecutionConfig(split="row").effective_dynamic is True
        assert ExecutionConfig(split="nnz").effective_dynamic is False
        assert ExecutionConfig(split="merge").effective_dynamic is False

    def test_with_overrides_revalidates(self):
        config = ExecutionConfig(split="row", threads=4)
        merged = config.with_overrides(split="merge")
        assert merged.split == "merge" and merged.threads == 4
        assert config.split == "row"  # frozen original untouched
        with pytest.raises(ShapeError):
            config.with_overrides(threads=0)


class TestBatchingKnobs:
    def test_defaults_disable_coalescing(self):
        config = ExecutionConfig()
        assert config.max_batch == 1
        assert config.flush_us == 0.0

    def test_accepts_valid_values(self):
        config = ExecutionConfig(max_batch=32, flush_us=150.0)
        assert config.max_batch == 32
        assert config.flush_us == 150.0

    def test_rejects_invalid_values(self):
        with pytest.raises(ShapeError):
            ExecutionConfig(max_batch=0)
        with pytest.raises(ShapeError):
            ExecutionConfig(max_batch=-3)
        with pytest.raises(ShapeError):
            ExecutionConfig(flush_us=-0.5)

    def test_with_overrides_revalidates_batching(self):
        config = ExecutionConfig()
        assert config.with_overrides(max_batch=8).max_batch == 8
        with pytest.raises(ShapeError):
            config.with_overrides(max_batch=0)


class TestGatewayKnobs:
    def test_defaults_single_worker_unlimited_tenants(self):
        config = ExecutionConfig()
        assert config.workers == 1
        assert config.max_inflight == 64
        assert config.tenant_quota is None

    def test_accepts_valid_values(self):
        config = ExecutionConfig(workers=4, max_inflight=256,
                                 tenant_quota=16)
        assert config.workers == 4
        assert config.max_inflight == 256
        assert config.tenant_quota == 16

    def test_rejects_invalid_values(self):
        with pytest.raises(ShapeError):
            ExecutionConfig(workers=0)
        with pytest.raises(ShapeError):
            ExecutionConfig(max_inflight=0)
        with pytest.raises(ShapeError):
            ExecutionConfig(tenant_quota=0)
        with pytest.raises(ShapeError):
            ExecutionConfig(tenant_quota=-2)

    def test_with_overrides_revalidates_gateway_knobs(self):
        config = ExecutionConfig()
        assert config.with_overrides(workers=2).workers == 2
        with pytest.raises(ShapeError):
            config.with_overrides(max_inflight=-1)


class TestResilienceKnobs:
    def test_defaults(self):
        config = ExecutionConfig()
        assert config.deadline_ms is None
        assert config.hang_threshold_ms == 60_000.0
        assert config.max_retries == 2
        assert config.breaker_threshold == 3

    def test_accepts_valid_values(self):
        config = ExecutionConfig(deadline_ms=250.0, hang_threshold_ms=500.0,
                                 max_retries=0, breaker_threshold=1)
        assert config.deadline_ms == 250.0
        assert config.hang_threshold_ms == 500.0
        assert config.max_retries == 0
        assert config.breaker_threshold == 1

    @pytest.mark.parametrize("kwargs", [
        {"deadline_ms": 0.0}, {"deadline_ms": -5.0},
        {"hang_threshold_ms": 0.0}, {"hang_threshold_ms": -1.0},
        {"max_retries": -1},
        {"breaker_threshold": 0},
    ])
    def test_rejects_invalid_values(self, kwargs):
        with pytest.raises(ShapeError):
            ExecutionConfig(**kwargs)

    def test_with_overrides_revalidates_resilience_knobs(self):
        config = ExecutionConfig()
        assert config.with_overrides(deadline_ms=100.0).deadline_ms == 100.0
        with pytest.raises(ShapeError):
            config.with_overrides(breaker_threshold=-3)


class TestTieringKnobs:
    def test_defaults_tiering_off(self):
        config = ExecutionConfig()
        assert config.tier_mode == "off"
        assert config.promote_after == 32
        assert config.promotion_workers == 1

    def test_accepts_valid_values(self):
        config = ExecutionConfig(tier_mode="lazy", promote_after=1,
                                 promotion_workers=4)
        assert config.tier_mode == "lazy"
        assert config.promote_after == 1
        assert config.promotion_workers == 4
        assert ExecutionConfig(tier_mode="eager").tier_mode == "eager"

    @pytest.mark.parametrize("kwargs", [
        {"tier_mode": "hot"}, {"tier_mode": ""}, {"tier_mode": "LAZY"},
        {"promote_after": 0}, {"promote_after": -8},
        {"promotion_workers": 0}, {"promotion_workers": -1},
    ])
    def test_rejects_invalid_values(self, kwargs):
        with pytest.raises(ShapeError):
            ExecutionConfig(**kwargs)

    def test_with_overrides_revalidates_tiering_knobs(self):
        config = ExecutionConfig()
        assert config.with_overrides(tier_mode="eager").tier_mode == "eager"
        with pytest.raises(ShapeError):
            config.with_overrides(promote_after=0)
