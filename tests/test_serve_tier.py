"""Tests for tiered execution (repro.serve.tier + SpmmService tiering).

The contract under test: a tiered service serves a cold handle's first
request from the shared address-free template with *zero* per-matrix
codegen, promotes the workspace to its specialized plan in the
background once traffic crosses the threshold, computes bit-identical
results on both tiers, and degrades to the template tier — with a
typed, counted reason — when promotion fails.
"""

import threading

import numpy as np
import pytest

from repro.api import available_systems, get_system
from repro.api.systems import JitSystem
from repro.errors import CodegenError, ShapeError
from repro.serve import (
    PromotionExecutor,
    SpmmService,
    TIER_FAILED,
    TIER_INLINE,
    TIER_PROMOTED,
    TIER_TEMPLATE,
    TierStats,
)
from repro.sparse import spmm_reference
from tests.conftest import random_csr

_D = 8


def tiered_service(**kwargs):
    kwargs.setdefault("threads", 2)
    kwargs.setdefault("split", "auto")
    kwargs.setdefault("timing", False)
    kwargs.setdefault("tier_mode", "lazy")
    kwargs.setdefault("promote_after", 3)
    return SpmmService(**kwargs)


class TestTemplateTier:
    def test_first_request_serves_template_without_codegen(self, rng):
        service = tiered_service()
        matrix = random_csr(rng, 30, 25, name="cold")
        x = rng.random((25, _D)).astype(np.float32)
        handle = service.register(matrix)
        y = service.multiply(handle, x)
        assert np.array_equal(y, spmm_reference(matrix, x))
        assert service.tier_state(handle, _D) == TIER_TEMPLATE
        # the whole point: the first request generated no code at all
        assert service.handle_stats(handle).codegen_runs == 0
        assert service.tiered
        service.close()

    def test_tier_state_is_none_before_first_request(self, rng):
        service = tiered_service()
        handle = service.register(random_csr(rng, 20, 20))
        assert service.tier_state(handle, _D) is None
        service.close()

    def test_untiered_service_reports_inline(self, rng):
        service = SpmmService(threads=2, split="auto", timing=False)
        matrix = random_csr(rng, 20, 20)
        handle = service.register(matrix)
        service.multiply(handle, rng.random((20, _D)).astype(np.float32))
        assert not service.tiered
        assert service.tier_state(handle, _D) == TIER_INLINE
        service.close()

    def test_template_traffic_counted_per_tier(self, rng):
        service = tiered_service(promote_after=100)
        matrix = random_csr(rng, 25, 25, name="counted")
        x = rng.random((25, _D)).astype(np.float32)
        handle = service.register(matrix)
        for _ in range(5):
            service.multiply(handle, x)
        assert service.handle_stats(handle).tiers == {TIER_TEMPLATE: 5}
        assert service.stats.tier_traffic == {TIER_TEMPLATE: 5}
        service.close()


class TestPromotion:
    def test_threshold_promotion_is_bit_identical(self, rng):
        service = tiered_service(promote_after=3)
        matrix = random_csr(rng, 40, 30, name="hot")
        x = rng.random((30, _D)).astype(np.float32)
        expected = spmm_reference(matrix, x)
        handle = service.register(matrix)
        template_results = [service.multiply(handle, x) for _ in range(3)]
        assert service.drain_promotions(10.0)
        assert service.tier_state(handle, _D) == TIER_PROMOTED
        promoted = service.multiply(handle, x)
        for y in template_results + [promoted]:
            assert np.array_equal(y, expected)
        assert service.tier_stats.outcome("promoted") == 1
        assert service.tier_stats.pending == 0
        tiers = service.handle_stats(handle).tiers
        assert tiers[TIER_TEMPLATE] == 3 and tiers[TIER_PROMOTED] == 1
        service.close()

    def test_eager_mode_promotes_on_first_request(self, rng):
        service = tiered_service(tier_mode="eager", promote_after=1000)
        matrix = random_csr(rng, 30, 30)
        x = rng.random((30, _D)).astype(np.float32)
        handle = service.register(matrix)
        y = service.multiply(handle, x)
        assert np.array_equal(y, spmm_reference(matrix, x))
        assert service.drain_promotions(10.0)
        assert service.tier_state(handle, _D) == TIER_PROMOTED
        service.close()

    def test_promotion_happens_once_per_workspace(self, rng):
        service = tiered_service(promote_after=2)
        matrix = random_csr(rng, 25, 25)
        x = rng.random((25, _D)).astype(np.float32)
        handle = service.register(matrix)
        for _ in range(8):
            service.multiply(handle, x)
        assert service.drain_promotions(10.0)
        assert service.tier_stats.outcome("promoted") == 1
        service.close()

    def test_identity_state_drains_after_unregister(self, rng):
        service = tiered_service(promote_after=1)
        matrix = random_csr(rng, 30, 30)
        x = rng.random((30, _D)).astype(np.float32)
        handle = service.register(matrix)
        service.multiply(handle, x)
        assert service.drain_promotions(10.0)
        service.multiply(handle, x)
        service.unregister(handle)
        assert not service._workspaces
        assert service._key_refs == {}
        assert service._keylocks == {}
        service.close()

    def test_profile_serves_both_tiers(self, rng):
        service = tiered_service(promote_after=2)
        matrix = random_csr(rng, 20, 20, name="profiled")
        x = rng.random((20, _D)).astype(np.float32)
        handle = service.register(matrix)
        cold = service.profile(handle, x, backend="counts")
        assert np.array_equal(cold.y, spmm_reference(matrix, x))
        service.multiply(handle, x)
        assert service.drain_promotions(10.0)
        assert service.tier_state(handle, _D) == TIER_PROMOTED
        hot = service.profile(handle, x, backend="counts")
        assert np.array_equal(hot.y, cold.y)
        tiers = service.handle_stats(handle).tiers
        assert tiers[TIER_TEMPLATE] == 2 and tiers[TIER_PROMOTED] == 1
        service.close()


class TestFailedPromotion:
    def test_degrades_to_template_with_typed_reason(self, rng, monkeypatch):
        service = tiered_service(promote_after=2)

        def boom(self, plan):
            raise CodegenError("injected: no code for you")

        monkeypatch.setattr(JitSystem, "build_kernel", boom)
        matrix = random_csr(rng, 30, 30, name="degraded")
        x = rng.random((30, _D)).astype(np.float32)
        expected = spmm_reference(matrix, x)
        handle = service.register(matrix)
        service.multiply(handle, x)
        service.multiply(handle, x)
        assert service.drain_promotions(10.0)
        assert service.tier_state(handle, _D) == TIER_FAILED
        assert isinstance(service.promotion_error(handle, _D), CodegenError)
        assert service.tier_stats.outcome("failed") == 1
        snap = service.snapshot()
        assert snap.tier.failure_reasons == {"CodegenError": 1}
        # the handle keeps serving — template tier, bit-correct
        assert np.array_equal(service.multiply(handle, x), expected)
        # no second promotion is attempted for a failed workspace
        service.multiply(handle, x)
        assert service.drain_promotions(10.0)
        assert service.tier_stats.outcome("failed") == 1
        # the never-committed identity left no orphaned lock state
        service.unregister(handle)
        assert service._key_refs == {}
        assert service._keylocks == {}
        service.close()

    def test_unregister_before_promotion_lands_is_stale(self, rng):
        # a promotion job that starts after its handle died settles as
        # stale (checked via the outcome counter), never as promoted
        service = tiered_service(promote_after=1, promotion_workers=1)
        gate = threading.Event()
        original = SpmmService._promote

        def held(self, handle, ws, d):
            gate.wait(10.0)
            original(self, handle, ws, d)

        try:
            SpmmService._promote = held
            matrix = random_csr(rng, 25, 25)
            x = rng.random((25, _D)).astype(np.float32)
            handle = service.register(matrix)
            service.multiply(handle, x)
            service.unregister(handle)
        finally:
            SpmmService._promote = original
            gate.set()
        assert service.drain_promotions(10.0)
        assert service.tier_stats.outcome("stale") == 1
        assert service.tier_stats.outcome("promoted") == 0
        assert service._key_refs == {}
        assert service._keylocks == {}
        service.close()


class TestReporting:
    def test_snapshot_and_report_carry_tier_state(self, rng):
        service = tiered_service(promote_after=2)
        matrix = random_csr(rng, 30, 30, name="reported")
        x = rng.random((30, _D)).astype(np.float32)
        handle = service.register(matrix)
        service.multiply(handle, x)
        service.multiply(handle, x)
        assert service.drain_promotions(10.0)
        service.multiply(handle, x)
        snap = service.snapshot()
        assert snap.tier is not None
        assert snap.tier.mode == "lazy"
        assert snap.tier.template == "mkl"
        assert snap.tier.outcomes.get("promoted") == 1
        report = snap.render()
        assert "tier: mode=lazy template=mkl promote_after=2" in report
        assert "traffic by tier:" in report
        service.close()

    def test_metric_samples_emit_tier_series(self, rng):
        service = tiered_service(promote_after=2)
        matrix = random_csr(rng, 25, 25)
        x = rng.random((25, _D)).astype(np.float32)
        handle = service.register(matrix)
        service.multiply(handle, x)
        service.multiply(handle, x)
        assert service.drain_promotions(10.0)
        service.multiply(handle, x)
        samples = {(s.name, s.labels): s.value
                   for s in service.snapshot().metric_samples()}
        by_name = {}
        for (name, labels), value in samples.items():
            by_name.setdefault(name, []).append((labels, value))
        traffic = dict(by_name["serve_tier_traffic_total"])
        assert any(v == 2.0 for v in traffic.values())  # template tier
        outcomes = dict(by_name["serve_tier_promotions_total"])
        # all three outcome buckets are present, zeros included
        assert len(outcomes) == 3 and sum(outcomes.values()) == 1.0
        assert "serve_tier_promotions_pending" in by_name
        assert "serve_tier_codegen_seconds_total" in by_name
        service.close()

    def test_untiered_snapshot_emits_no_tier_series(self, rng):
        service = SpmmService(threads=2, split="row", timing=False)
        handle = service.register(random_csr(rng, 20, 20))
        service.multiply(handle, rng.random((20, _D)).astype(np.float32))
        snap = service.snapshot()
        assert snap.tier is None
        names = {s.name for s in snap.metric_samples()}
        assert not any(name.startswith("serve_tier_") for name in names)
        service.close()


class TestRegistryConformance:
    @pytest.mark.parametrize("system", available_systems())
    def test_every_system_is_bit_identical_across_tiers(self, rng, system):
        """Tiering must never change a bit, whatever the system — and
        systems with no cheaper template stay inert (inline tier)."""
        supports_auto = get_system(system).supports_autotune
        kwargs = dict(
            threads=2, split="auto" if supports_auto else "row",
            timing=False, tier_mode="eager", system=system)
        if system.startswith("aot:") or system in (
                "clang", "gcc", "icc", "icc-avx512"):
            kwargs.update(opt_level=3, search_budget=2)
        service = SpmmService(**kwargs)
        matrix = random_csr(rng, 25, 20, name=f"conform-{system}")
        x = rng.random((20, _D)).astype(np.float32)
        expected = spmm_reference(matrix, x)
        handle = service.register(matrix)
        first = service.multiply(handle, x)
        assert service.drain_promotions(30.0)
        second = service.multiply(handle, x)
        assert np.array_equal(first, expected)
        assert np.array_equal(second, expected)
        if service.tiered:
            assert service.tier_state(handle, _D) == TIER_PROMOTED
        else:
            assert service.tier_state(handle, _D) == TIER_INLINE
        service.close()


class TestTierPrimitives:
    def test_promotion_executor_runs_and_drains(self):
        executor = PromotionExecutor(workers=2)
        done = []
        for index in range(8):
            assert executor.submit(lambda i=index: done.append(i))
        assert executor.drain(5.0)
        assert sorted(done) == list(range(8))
        executor.close()
        assert not executor.submit(lambda: done.append(99))
        assert 99 not in done

    def test_promotion_executor_survives_raising_jobs(self):
        executor = PromotionExecutor(workers=1)
        done = []
        executor.submit(lambda: 1 / 0)
        executor.submit(lambda: done.append("after"))
        assert executor.drain(5.0)
        assert done == ["after"]
        executor.close()

    def test_promotion_executor_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            PromotionExecutor(workers=0)

    def test_tier_stats_accounting(self):
        stats = TierStats()
        stats.begin()
        stats.begin()
        assert stats.pending == 2
        stats.finish("promoted", codegen_seconds=0.25)
        stats.finish("failed", reason="CodegenError")
        snap = stats.snapshot(mode="lazy", template="mkl", promote_after=4)
        assert snap.pending == 0
        assert snap.outcomes == {"promoted": 1, "failed": 1}
        assert snap.failure_reasons == {"CodegenError": 1}
        assert snap.codegen_seconds == 0.25
        assert "promotions promoted=1 failed=1 stale=0 pending=0" in (
            snap.render())
        assert "failures CodegenError=1" in snap.render()

    def test_tier_stats_rejects_unknown_outcome(self):
        stats = TierStats()
        stats.begin()
        with pytest.raises(ValueError):
            stats.finish("eaten-by-grue")

    def test_service_rejects_bad_tier_knobs(self, rng):
        with pytest.raises(ShapeError):
            SpmmService(threads=2, tier_mode="sideways")
        with pytest.raises(ShapeError):
            SpmmService(threads=2, tier_mode="lazy", promote_after=0)
        with pytest.raises(ShapeError):
            SpmmService(threads=2, tier_mode="lazy", promotion_workers=0)
