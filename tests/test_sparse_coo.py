"""Unit tests for the COO container."""

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import CooMatrix


def make_coo() -> CooMatrix:
    return CooMatrix(
        3, 4,
        rows=np.array([0, 0, 2, 2]),
        cols=np.array([1, 3, 0, 3]),
        vals=np.array([1.0, 2.0, 3.0, 4.0]),
    )


class TestConstruction:
    def test_basic_properties(self):
        coo = make_coo()
        assert coo.nnz == 4
        assert coo.shape == (3, 4)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(SparseFormatError):
            CooMatrix(2, 2, np.array([0]), np.array([0, 1]), np.array([1.0]))

    def test_rejects_out_of_range_row(self):
        with pytest.raises(SparseFormatError):
            CooMatrix(2, 2, np.array([2]), np.array([0]), np.array([1.0]))

    def test_rejects_out_of_range_col(self):
        with pytest.raises(SparseFormatError):
            CooMatrix(2, 2, np.array([0]), np.array([5]), np.array([1.0]))

    def test_rejects_negative_shape(self):
        with pytest.raises(ShapeError):
            CooMatrix(-1, 2, np.array([], dtype=int), np.array([], dtype=int),
                      np.array([], dtype=np.float32))

    def test_rejects_2d_arrays(self):
        with pytest.raises(SparseFormatError):
            CooMatrix(2, 2, np.zeros((1, 1), dtype=int), np.array([0]),
                      np.array([1.0]))

    def test_arrays_coerced_to_canonical_dtypes(self):
        coo = make_coo()
        assert coo.rows.dtype == np.int64
        assert coo.cols.dtype == np.int64
        assert coo.vals.dtype == np.float32


class TestConversions:
    def test_dense_round_trip(self):
        dense = np.array([[0, 1.5], [2.5, 0]], dtype=np.float32)
        coo = CooMatrix.from_dense(dense)
        assert np.array_equal(coo.to_dense(), dense)

    def test_from_dense_drops_zeros(self):
        dense = np.array([[0, 1], [0, 0]], dtype=np.float32)
        assert CooMatrix.from_dense(dense).nnz == 1

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ShapeError):
            CooMatrix.from_dense(np.array([1.0, 2.0]))

    def test_to_dense_sums_duplicates(self):
        coo = CooMatrix(1, 1, np.array([0, 0]), np.array([0, 0]),
                        np.array([1.0, 2.0]))
        assert coo.to_dense()[0, 0] == pytest.approx(3.0)

    def test_transpose(self):
        coo = make_coo()
        transposed = coo.transpose()
        assert transposed.shape == (4, 3)
        assert np.array_equal(transposed.to_dense(), coo.to_dense().T)

    def test_transpose_is_involution(self):
        coo = make_coo()
        back = coo.transpose().transpose()
        assert np.array_equal(back.to_dense(), coo.to_dense())


class TestNormalization:
    def test_sorted_by_row_orders_lexicographically(self):
        coo = CooMatrix(3, 3, np.array([2, 0, 2, 0]), np.array([1, 2, 0, 0]),
                        np.array([1.0, 2.0, 3.0, 4.0]))
        out = coo.sorted_by_row()
        assert list(out.rows) == [0, 0, 2, 2]
        assert list(out.cols) == [0, 2, 0, 1]

    def test_sum_duplicates_merges(self):
        coo = CooMatrix(2, 2, np.array([0, 0, 1]), np.array([1, 1, 0]),
                        np.array([1.0, 4.0, 2.0]))
        out = coo.sum_duplicates()
        assert out.nnz == 2
        assert np.array_equal(out.to_dense(), coo.to_dense())

    def test_sum_duplicates_empty(self):
        coo = CooMatrix(2, 2, np.array([], dtype=int), np.array([], dtype=int),
                        np.array([], dtype=np.float32))
        assert coo.sum_duplicates().nnz == 0
