"""The exception hierarchy: everything under ReproError, as documented."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError), name


def test_specialization_relationships():
    assert issubclass(errors.EncodingError, errors.AssemblyError)
    assert issubclass(errors.SegmentationFault, errors.MachineError)
    assert issubclass(errors.ExecutionLimitExceeded, errors.MachineError)
    assert issubclass(errors.RegisterPressureError, errors.CompileError)


def test_catchable_as_library_failure():
    with pytest.raises(errors.ReproError):
        raise errors.CodegenError("boom")
