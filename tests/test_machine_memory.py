"""Tests for the simulated flat memory."""

import numpy as np
import pytest

from repro.errors import MachineError, SegmentationFault
from repro.machine import Memory


class TestMapping:
    def test_segments_do_not_overlap(self):
        mem = Memory()
        bases = [mem.map_array(np.zeros(100, dtype=np.float32)) for _ in range(5)]
        segs = mem.segments
        for a, b in zip(segs, segs[1:]):
            assert a.end <= b.base

    def test_zero_copy_aliasing(self):
        mem = Memory()
        arr = np.zeros(4, dtype=np.float32)
        base = mem.map_array(arr)
        mem.write_f32(base + 4, np.array([2.5], dtype=np.float32))
        assert arr[1] == 2.5  # simulated store visible to host
        arr[2] = 7.0
        assert mem.read_f32(base + 8)[0] == 7.0  # host store visible to sim

    def test_map_zeros(self):
        mem = Memory()
        base, arr = mem.map_zeros(64, "scratch")
        assert arr.size == 64
        assert mem.read_int(base, 8) == 0

    def test_map_zeros_rejects_nonpositive(self):
        with pytest.raises(MachineError):
            Memory().map_zeros(0)

    def test_unmapped_access_faults(self):
        mem = Memory()
        mem.map_array(np.zeros(8, dtype=np.float32))
        with pytest.raises(SegmentationFault):
            mem.read_int(0x100, 8)

    def test_overrun_into_guard_faults(self):
        mem = Memory()
        base = mem.map_array(np.zeros(2, dtype=np.float32))
        with pytest.raises(SegmentationFault):
            mem.read_int(base + 8, 8)  # past the 8-byte segment

    def test_map_events_counts_every_mapping(self):
        before = Memory.map_events
        mem = Memory()
        mem.map_array(np.zeros(8, dtype=np.float32))
        mem.map_zeros(16)
        assert Memory.map_events == before + 2


class TestLastHitCache:
    """segment_of caches the last-hit segment; guard pages stay guarded."""

    def test_hot_loop_reuses_segment(self):
        mem = Memory()
        base = mem.map_array(np.arange(64, dtype=np.int64))
        seg = mem.segment_of(base, 8)
        for i in range(64):
            assert mem.segment_of(base + 8 * i, 8) is seg

    def test_guard_page_fault_after_warm_hit(self):
        """Regression: a warm last-hit segment must not swallow an
        overrun into the guard page right behind it."""
        mem = Memory()
        base = mem.map_array(np.zeros(4, dtype=np.int64))
        assert mem.segment_of(base, 8) is not None  # warm the cache
        with pytest.raises(SegmentationFault):
            mem.segment_of(base + 32, 8)  # first byte past the segment
        with pytest.raises(SegmentationFault):
            mem.segment_of(base + 28, 8)  # straddles into the guard

    def test_warm_hit_does_not_shadow_other_segments(self):
        mem = Memory()
        a = mem.map_array(np.zeros(8, dtype=np.int64))
        b = mem.map_array(np.arange(8, dtype=np.int64))
        assert mem.segment_of(b, 8).base == b   # warm with b
        assert mem.segment_of(a, 8).base == a   # a still resolves
        with pytest.raises(SegmentationFault):
            mem.segment_of(a - 8, 8)  # below every segment

    def test_unmapped_low_address_still_faults_when_cache_warm(self):
        mem = Memory()
        base = mem.map_array(np.zeros(8, dtype=np.int64))
        mem.segment_of(base, 8)
        with pytest.raises(SegmentationFault):
            mem.segment_of(0x10, 4)


class TestScalarAccess:
    def test_int_round_trip(self):
        mem = Memory()
        base, _ = mem.map_zeros(32)
        mem.write_int(base, 8, 0x1122334455667788)
        assert mem.read_int(base, 8) == 0x1122334455667788

    def test_int32_round_trip(self):
        mem = Memory()
        base, _ = mem.map_zeros(32)
        mem.write_int(base + 4, 4, 0xDEADBEEF)
        assert mem.read_int(base + 4, 4) == 0xDEADBEEF

    def test_little_endian(self):
        mem = Memory()
        base, arr = mem.map_zeros(8)
        mem.write_int(base, 4, 0x01020304)
        assert list(arr[:4]) == [0x04, 0x03, 0x02, 0x01]

    def test_negative_value_masked(self):
        mem = Memory()
        base, _ = mem.map_zeros(8)
        mem.write_int(base, 8, -1)
        assert mem.read_int(base, 8) == (1 << 64) - 1


class TestVectorAccess:
    def test_f32_vector_round_trip(self):
        mem = Memory()
        base, _ = mem.map_zeros(64)
        values = np.arange(16, dtype=np.float32)
        mem.write_f32(base, values)
        assert np.array_equal(mem.read_f32(base, 16), values)

    def test_unaligned_f32(self):
        mem = Memory()
        base, _ = mem.map_zeros(64)
        mem.write_f32(base + 4, np.array([1.5, 2.5], dtype=np.float32))
        out = mem.read_f32(base + 4, 2)
        assert list(out) == [1.5, 2.5]

    def test_i32_vector(self):
        mem = Memory()
        arr = np.arange(8, dtype=np.int32)
        base = mem.map_array(arr)
        assert np.array_equal(mem.read_i32_vec(base, 8), arr)

    def test_int64_array_view(self):
        mem = Memory()
        arr = np.array([10, 20, 30], dtype=np.int64)
        base = mem.map_array(arr)
        assert mem.read_int(base + 8, 8) == 20
