"""Unit + property tests for the CSR container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SparseFormatError
from repro.sparse import CooMatrix, CsrMatrix


def example_csr() -> CsrMatrix:
    """The matrix from the paper's Figure 2 (4x4, nnz=8)."""
    return CsrMatrix(
        4, 4,
        row_ptr=np.array([0, 2, 2, 4, 8]),
        col_indices=np.array([0, 2, 2, 3, 0, 1, 2, 3]),
        vals=np.array([1.0, 1.0, 3.0, 3.0, 4.0, 4.0, 4.0, 4.0]),
    )


class TestValidation:
    def test_paper_figure2_matrix_is_valid(self):
        mat = example_csr()
        assert mat.nnz == 8
        assert list(mat.row_lengths()) == [2, 0, 2, 4]

    def test_rejects_bad_row_ptr_length(self):
        with pytest.raises(SparseFormatError):
            CsrMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_rejects_nonzero_first_offset(self):
        with pytest.raises(SparseFormatError):
            CsrMatrix(1, 2, np.array([1, 1]), np.array([], dtype=int),
                      np.array([], dtype=np.float32))

    def test_rejects_decreasing_row_ptr(self):
        with pytest.raises(SparseFormatError):
            CsrMatrix(2, 2, np.array([0, 2, 1]), np.array([0, 1]),
                      np.array([1.0, 2.0]))

    def test_rejects_wrong_nnz(self):
        with pytest.raises(SparseFormatError):
            CsrMatrix(1, 2, np.array([0, 2]), np.array([0]), np.array([1.0]))

    def test_rejects_column_out_of_range(self):
        with pytest.raises(SparseFormatError):
            CsrMatrix(1, 2, np.array([0, 1]), np.array([2]), np.array([1.0]))


class TestAccessors:
    def test_row_slice(self):
        mat = example_csr()
        cols, vals = mat.row_slice(3)
        assert list(cols) == [0, 1, 2, 3]
        assert list(vals) == [4.0] * 4

    def test_row_slice_empty_row(self):
        cols, vals = example_csr().row_slice(1)
        assert cols.size == 0 and vals.size == 0

    def test_row_slice_out_of_range(self):
        with pytest.raises(IndexError):
            example_csr().row_slice(4)

    def test_density(self):
        assert example_csr().density() == pytest.approx(0.5)

    def test_mean_and_max_row_length(self):
        mat = example_csr()
        assert mat.mean_row_length() == pytest.approx(2.0)
        assert mat.max_row_length() == 4

    def test_gini_zero_for_uniform(self):
        mat = CsrMatrix.from_dense(np.eye(8, dtype=np.float32))
        assert mat.gini_row_imbalance() == pytest.approx(0.0, abs=1e-9)

    def test_gini_high_for_skewed(self):
        dense = np.zeros((16, 16), dtype=np.float32)
        dense[0, :] = 1.0  # one row holds everything
        mat = CsrMatrix.from_dense(dense)
        assert mat.gini_row_imbalance() > 0.9

    def test_repr_includes_name(self):
        mat = CsrMatrix.from_dense(np.eye(2, dtype=np.float32), name="eye2")
        assert "eye2" in repr(mat)


class TestConversions:
    def test_dense_round_trip(self):
        dense = np.array([[0, 2, 0], [1, 0, 0]], dtype=np.float32)
        assert np.array_equal(CsrMatrix.from_dense(dense).to_dense(), dense)

    def test_coo_round_trip(self):
        mat = example_csr()
        back = CsrMatrix.from_coo(mat.to_coo())
        assert np.array_equal(back.to_dense(), mat.to_dense())

    def test_from_coo_sums_duplicates(self):
        coo = CooMatrix(2, 2, np.array([0, 0]), np.array([1, 1]),
                        np.array([1.0, 2.0]))
        mat = CsrMatrix.from_coo(coo)
        assert mat.nnz == 1
        assert mat.to_dense()[0, 1] == pytest.approx(3.0)

    def test_matches_scipy(self):
        sp = pytest.importorskip("scipy.sparse")
        rng = np.random.default_rng(7)
        ref = sp.random(50, 40, density=0.1, random_state=7, format="csr",
                        dtype=np.float32)
        mat = CsrMatrix.from_scipy(ref)
        assert np.allclose(mat.to_dense(), ref.toarray())
        assert np.allclose(mat.to_scipy().toarray(), ref.toarray())


@settings(max_examples=50, deadline=None)
@given(
    nrows=st.integers(1, 12),
    ncols=st.integers(1, 12),
    seed=st.integers(0, 2**32 - 1),
)
def test_property_dense_csr_round_trip(nrows, ncols, seed):
    rng = np.random.default_rng(seed)
    dense = ((rng.random((nrows, ncols)) < 0.4) * rng.standard_normal(
        (nrows, ncols))).astype(np.float32)
    mat = CsrMatrix.from_dense(dense)
    assert np.array_equal(mat.to_dense(), dense)
    # row_ptr invariants
    assert mat.row_ptr[0] == 0
    assert mat.row_ptr[-1] == mat.nnz
    assert np.all(np.diff(mat.row_ptr) >= 0)
    # per-row columns are sorted and unique
    for i in range(nrows):
        cols, _ = mat.row_slice(i)
        assert np.all(np.diff(cols) > 0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_property_coo_csr_agree(seed):
    rng = np.random.default_rng(seed)
    nnz = int(rng.integers(0, 60))
    rows = rng.integers(0, 9, size=nnz)
    cols = rng.integers(0, 7, size=nnz)
    vals = rng.standard_normal(nnz).astype(np.float32)
    coo = CooMatrix(9, 7, rows, cols, vals)
    csr = CsrMatrix.from_coo(coo)
    assert np.allclose(csr.to_dense(), coo.to_dense(), atol=1e-5)
