"""Tests for the execution tracer."""

from repro.isa.assembler import Assembler
from repro.isa.registers import regs
from repro.machine import Cpu, CpuConfig, Memory
from repro.machine.trace import Tracer


def loop_program(iterations: int):
    asm = Assembler("traced")
    asm.mov(regs.rcx, 0)
    asm.label("loop")
    asm.cmp(regs.rcx, iterations)
    asm.jge("done")
    asm.inc(regs.rcx)
    asm.jmp("loop")
    asm.label("done")
    asm.ret()
    return asm.finish()


class TestTracer:
    def test_records_every_instruction(self):
        cpu = Cpu(Memory(), CpuConfig(timing=False))
        tracer = Tracer(cpu)
        tracer.run(loop_program(3))
        assert len(tracer.entries) == cpu.counters.instructions
        assert tracer.entries[0].text.startswith("mov")
        assert tracer.entries[-1].text == "ret"

    def test_cycles_monotone_in_timing_mode(self):
        cpu = Cpu(Memory(), CpuConfig(timing=True))
        tracer = Tracer(cpu)
        tracer.run(loop_program(5))
        cycles = [entry.cycles for entry in tracer.entries]
        assert all(b >= a for a, b in zip(cycles, cycles[1:]))
        assert cycles[-1] > 0

    def test_histogram(self):
        cpu = Cpu(Memory(), CpuConfig(timing=False))
        tracer = Tracer(cpu)
        tracer.run(loop_program(4))
        hist = tracer.histogram()
        assert hist["inc"] == 4
        assert hist["cmp"] == 5
        assert hist["ret"] == 1

    def test_ring_buffer_bounds_memory(self):
        cpu = Cpu(Memory(), CpuConfig(timing=False))
        tracer = Tracer(cpu, limit=50)
        tracer.run(loop_program(200))
        assert len(tracer.entries) <= 100  # 2 * limit
        assert tracer.entries[-1].text == "ret"

    def test_render_and_tail(self):
        cpu = Cpu(Memory(), CpuConfig(timing=False))
        tracer = Tracer(cpu)
        tracer.run(loop_program(2))
        assert len(tracer.tail(5)) == 5
        assert "ret" in tracer.render(3)

    def test_cpu_usable_after_tracing(self):
        cpu = Cpu(Memory(), CpuConfig(timing=False))
        tracer = Tracer(cpu)
        program = loop_program(2)
        tracer.run(program)
        before = cpu.counters.instructions
        cpu.run(program, init_gpr={"rcx": 0})  # untraced rerun
        assert cpu.counters.instructions > before
