"""Integration tests for the per-experiment bench modules (tiny scale)."""

import pytest

from repro.bench.fig9 import run_fig9
from repro.bench.fig10 import run_fig10
from repro.bench.fig11 import run_fig11
from repro.bench.harness import BenchConfig
from repro.bench.table2 import run_table2
from repro.bench.table4 import run_table4


@pytest.fixture(scope="module")
def tiny_config():
    return BenchConfig(scale=2.0 ** -22, threads=2,
                       datasets=("uk-2005", "GAP-urand"))


class TestTable2:
    def test_runs_and_orders(self, tiny_config):
        result = run_table2(tiny_config)
        assert set(result.counters) == {"gcc", "clang", "icc", "jit"}
        # headline orderings at any scale
        assert result.ratio("instructions", "gcc") > 2.0
        assert result.ratio("memory_loads", "gcc") > 1.5
        assert result.counters["gcc"].branches > result.counters["icc"].branches

    def test_render_mentions_paper(self, tiny_config):
        text = run_table2(tiny_config).render()
        assert "Table II" in text
        assert "2.4/2.6/2.7x" in text  # paper column present


class TestTable4:
    def test_overhead_bounded(self, tiny_config):
        result = run_table4(tiny_config)
        for name in tiny_config.datasets:
            assert 0.0 < result.overhead_pct[name] < 100.0
            assert result.codegen_seconds[name] > 0

    def test_render(self, tiny_config):
        assert "Table IV" in run_table4(tiny_config).render()


class TestFigures:
    def test_fig9_speedups_positive(self, tiny_config):
        result = run_fig9(tiny_config)
        assert all(v > 0 for v in result.data.speedups.values())
        assert len(result.data.speedups) == 2 * 2 * 3  # datasets x d x splits
        assert "Fig. 9" in result.render()

    def test_fig10_narrower_than_fig9(self, tiny_config):
        fig9 = run_fig9(tiny_config)
        fig10 = run_fig10(tiny_config)
        for d in (16, 32):
            for split in ("row", "nnz", "merge"):
                assert fig10.data.average(d, split) < fig9.data.average(d, split)

    def test_fig11_jit_lowest_on_instructions(self, tiny_config):
        result = run_fig11(tiny_config)
        for dataset in tiny_config.datasets:
            jit = result.value("jit", dataset, "instructions")
            assert result.value("icc-avx512", dataset, "instructions") > jit
            assert result.value("mkl", dataset, "instructions") > jit
        assert "Fig. 11" in result.render()

    def test_fig11_reuses_cached_runs(self, tiny_config):
        before = len(tiny_config._runs)
        run_fig11(tiny_config)
        middle = len(tiny_config._runs)
        run_fig11(tiny_config)
        assert len(tiny_config._runs) == middle
        assert middle >= before
