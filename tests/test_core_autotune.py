"""Tests for the split auto-tuner."""

import numpy as np
import pytest

from repro.core.autotune import choose_split, predicted_makespan
from repro.core.runner import run_jit
from repro.sparse import CsrMatrix
from tests.conftest import random_csr


def skewed(nrows=256, heavy=64) -> CsrMatrix:
    dense = np.zeros((nrows, nrows), dtype=np.float32)
    dense[0, :heavy] = 1.0
    dense[1:, 0] = 1.0
    return CsrMatrix.from_dense(dense)


class TestPredictions:
    def test_balanced_matrix_ties(self):
        mat = CsrMatrix.from_dense(np.eye(64, dtype=np.float32))
        row = predicted_makespan(mat, 16, 4, "row")
        nnz = predicted_makespan(mat, 16, 4, "nnz")
        assert row == pytest.approx(nnz, rel=0.15)

    def test_skew_punishes_row_split(self):
        mat = skewed()
        row = predicted_makespan(mat, 16, 8, "row")
        nnz = predicted_makespan(mat, 16, 8, "nnz")
        assert nnz < row

    def test_makespan_decreases_with_threads(self):
        mat = skewed()
        assert (predicted_makespan(mat, 16, 8, "merge")
                <= predicted_makespan(mat, 16, 2, "merge"))


class TestChoice:
    def test_returns_all_candidates(self):
        choice = choose_split(skewed(), 16, 4)
        assert set(choice.scores) == {
            "row (static)", "nnz", "merge", "row (dynamic)"}
        assert choice.split in ("row", "nnz", "merge")
        assert choice.predicted_cycles == min(choice.scores.values())

    def test_skewed_matrix_avoids_static_row(self):
        choice = choose_split(skewed(), 16, 8)
        assert not (choice.split == "row" and not choice.dynamic)

    def test_describe_renders(self):
        text = choose_split(skewed(), 16, 4).describe()
        assert "chosen:" in text
        assert "predicted" in text

    def test_choice_is_runnable(self, rng):
        matrix = random_csr(rng, 60, 50, density=0.15)
        x = rng.random((50, 16)).astype(np.float32)
        choice = choose_split(matrix, 16, 4)
        result = run_jit(matrix, x, split=choice.split, threads=4,
                         dynamic=choice.dynamic, batch=choice.batch,
                         timing=False)
        from repro.sparse import spmm_reference
        assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-3)

    def test_prediction_correlates_with_simulation(self, rng):
        """The tuner's ranking should match simulated cycle ordering on a
        clearly skewed instance (static row vs nnz)."""
        mat = skewed(nrows=128, heavy=96)
        x = rng.random((128, 16)).astype(np.float32)
        sim = {}
        for split in ("row", "nnz"):
            result = run_jit(mat, x, split=split, threads=8, dynamic=False,
                             timing=True)
            sim[split] = result.counters.cycles
        pred_row = predicted_makespan(mat, 16, 8, "row")
        pred_nnz = predicted_makespan(mat, 16, 8, "nnz")
        assert (pred_row > pred_nnz) == (sim["row"] > sim["nnz"])


class TestMemo:
    def setup_method(self):
        from repro.core.autotune import clear_autotune_memo
        clear_autotune_memo()

    def test_same_matrix_hits(self, rng):
        from repro.core.autotune import autotune_memo_stats, choose_split
        from tests.conftest import random_csr
        matrix = random_csr(rng, 50, 40)
        first = choose_split(matrix, 8, 4)
        second = choose_split(matrix, 8, 4)
        assert second is first
        stats = autotune_memo_stats()
        assert stats == {"hits": 1, "misses": 1, "entries": 1,
                         "pass_entries": 0}

    def test_twin_object_hits_via_fingerprint(self, rng):
        from repro.core.autotune import autotune_memo_stats, choose_split
        from tests.conftest import random_csr
        matrix = random_csr(rng, 50, 40)
        twin = type(matrix)(matrix.nrows, matrix.ncols,
                            matrix.row_ptr.copy(),
                            matrix.col_indices.copy(), matrix.vals.copy())
        assert matrix.fingerprint() == twin.fingerprint()
        first = choose_split(matrix, 8, 4)
        assert choose_split(twin, 8, 4) is first
        assert autotune_memo_stats()["hits"] == 1

    def test_key_includes_d_threads_isa(self, rng):
        from repro.core.autotune import autotune_memo_stats, choose_split
        from tests.conftest import random_csr
        matrix = random_csr(rng, 50, 40)
        choose_split(matrix, 8, 4)
        choose_split(matrix, 16, 4)
        choose_split(matrix, 8, 2)
        choose_split(matrix, 8, 4, isa="avx2")
        stats = autotune_memo_stats()
        assert stats["misses"] == 4 and stats["hits"] == 0

    def test_memo_false_bypasses(self, rng):
        from repro.core.autotune import autotune_memo_stats, choose_split
        from tests.conftest import random_csr
        matrix = random_csr(rng, 50, 40)
        baseline = choose_split(matrix, 8, 4, memo=False)
        again = choose_split(matrix, 8, 4, memo=False)
        assert again is not baseline
        assert again == baseline            # deterministic either way
        assert autotune_memo_stats() == {"hits": 0, "misses": 0,
                                         "entries": 0, "pass_entries": 0}

    def test_cap_bounds_entries(self, rng, monkeypatch):
        import repro.core.autotune as autotune
        from tests.conftest import random_csr
        monkeypatch.setattr(autotune, "_MEMO_CAP", 3)
        matrix = random_csr(rng, 30, 30)
        for d in (2, 4, 8, 16, 32):
            autotune.choose_split(matrix, d, 2)
        assert autotune.autotune_memo_stats()["entries"] == 3

    def test_fingerprint_distinguishes_values(self, rng):
        from tests.conftest import random_csr
        matrix = random_csr(rng, 30, 30)
        altered = type(matrix)(matrix.nrows, matrix.ncols,
                               matrix.row_ptr.copy(),
                               matrix.col_indices.copy(),
                               matrix.vals * np.float32(2.0))
        assert matrix.fingerprint() != altered.fingerprint()
