"""Tests for the split auto-tuner."""

import numpy as np
import pytest

from repro.core.autotune import choose_split, predicted_makespan
from repro.core.runner import run_jit
from repro.sparse import CsrMatrix
from tests.conftest import random_csr


def skewed(nrows=256, heavy=64) -> CsrMatrix:
    dense = np.zeros((nrows, nrows), dtype=np.float32)
    dense[0, :heavy] = 1.0
    dense[1:, 0] = 1.0
    return CsrMatrix.from_dense(dense)


class TestPredictions:
    def test_balanced_matrix_ties(self):
        mat = CsrMatrix.from_dense(np.eye(64, dtype=np.float32))
        row = predicted_makespan(mat, 16, 4, "row")
        nnz = predicted_makespan(mat, 16, 4, "nnz")
        assert row == pytest.approx(nnz, rel=0.15)

    def test_skew_punishes_row_split(self):
        mat = skewed()
        row = predicted_makespan(mat, 16, 8, "row")
        nnz = predicted_makespan(mat, 16, 8, "nnz")
        assert nnz < row

    def test_makespan_decreases_with_threads(self):
        mat = skewed()
        assert (predicted_makespan(mat, 16, 8, "merge")
                <= predicted_makespan(mat, 16, 2, "merge"))


class TestChoice:
    def test_returns_all_candidates(self):
        choice = choose_split(skewed(), 16, 4)
        assert set(choice.scores) == {
            "row (static)", "nnz", "merge", "row (dynamic)"}
        assert choice.split in ("row", "nnz", "merge")
        assert choice.predicted_cycles == min(choice.scores.values())

    def test_skewed_matrix_avoids_static_row(self):
        choice = choose_split(skewed(), 16, 8)
        assert not (choice.split == "row" and not choice.dynamic)

    def test_describe_renders(self):
        text = choose_split(skewed(), 16, 4).describe()
        assert "chosen:" in text
        assert "predicted" in text

    def test_choice_is_runnable(self, rng):
        matrix = random_csr(rng, 60, 50, density=0.15)
        x = rng.random((50, 16)).astype(np.float32)
        choice = choose_split(matrix, 16, 4)
        result = run_jit(matrix, x, split=choice.split, threads=4,
                         dynamic=choice.dynamic, batch=choice.batch,
                         timing=False)
        from repro.sparse import spmm_reference
        assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-3)

    def test_prediction_correlates_with_simulation(self, rng):
        """The tuner's ranking should match simulated cycle ordering on a
        clearly skewed instance (static row vs nnz)."""
        mat = skewed(nrows=128, heavy=96)
        x = rng.random((128, 16)).astype(np.float32)
        sim = {}
        for split in ("row", "nnz"):
            result = run_jit(mat, x, split=split, threads=8, dynamic=False,
                             timing=True)
            sim[split] = result.counters.cycles
        pred_row = predicted_makespan(mat, 16, 8, "row")
        pred_nnz = predicted_makespan(mat, 16, 8, "nnz")
        assert (pred_row > pred_nnz) == (sim["row"] > sim["nnz"])
