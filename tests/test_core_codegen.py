"""Tests for the JIT code generator (paper Listings 1-2)."""

import pytest

from repro.core.codegen import JitCodegen, JitKernelSpec
from repro.errors import CodegenError
from repro.isa.isainfo import IsaLevel


def spec(d=16, m=100, **kw):
    defaults = dict(
        d=d, m=m, row_ptr_addr=0x10000, col_addr=0x20000,
        vals_addr=0x30000, x_addr=0x40000, y_addr=0x50000,
        next_addr=0x60000, batch=128, isa=IsaLevel.AVX512,
    )
    defaults.update(kw)
    return JitKernelSpec(**defaults)


class TestSpecValidation:
    def test_rejects_bad_d(self):
        with pytest.raises(CodegenError):
            JitCodegen(spec(d=0))

    def test_dynamic_needs_next(self):
        gen = JitCodegen(spec(next_addr=0))
        with pytest.raises(CodegenError):
            gen.build_dynamic_kernel()

    def test_dynamic_needs_positive_batch(self):
        gen = JitCodegen(spec(batch=0))
        with pytest.raises(CodegenError):
            gen.build_dynamic_kernel()


class TestListing2Structure:
    """The generated code must match the paper's Listing 2 shape."""

    def test_d16_uses_one_fma_per_nnz(self):
        program = JitCodegen(spec(d=16)).build_range_kernel()
        counts = program.static_counts()
        assert counts["vfmadd231ps"] == 1
        assert counts["vxorps"] == 1
        assert counts["vbroadcastss"] == 1
        assert counts["vmovups"] == 1  # one write-back

    def test_d45_matches_paper_listing(self):
        # Listing 2: 5 vxorps, 4 vfmadd231ps + 1 vfmadd231ss,
        # 4 vmovups + 1 vmovss
        program = JitCodegen(spec(d=45)).build_range_kernel()
        counts = program.static_counts()
        assert counts["vxorps"] == 5
        assert counts["vfmadd231ps"] == 4
        assert counts["vfmadd231ss"] == 1
        assert counts["vmovups"] == 4
        assert counts["vmovss"] == 1

    def test_no_column_loop(self):
        # CCM unrolls the column loop away: exactly two loop branches
        # remain in a range kernel (row loop + nnz loop)
        program = JitCodegen(spec(d=45)).build_range_kernel()
        counts = program.static_counts()
        assert counts["jge"] == 2
        assert counts["jmp"] == 2

    def test_addresses_baked_as_immediates(self):
        program = JitCodegen(spec()).build_range_kernel()
        listing = program.listing()
        assert f"{0x20000:#x}" in listing  # col base is an immediate

    def test_scalar_isa_uses_mul_add(self):
        program = JitCodegen(spec(d=8, isa=IsaLevel.SCALAR)).build_range_kernel()
        counts = program.static_counts()
        assert counts["vmulss"] == 8
        assert counts["vaddss"] == 8
        assert "vfmadd231ps" not in counts
        assert counts["vmovss"] >= 8

    def test_column_tiling_for_wide_d(self):
        gen = JitCodegen(spec(d=16 * 35))
        assert len(gen.tiles) > 1
        program = gen.build_range_kernel()
        # one nnz loop per tile
        assert program.static_counts()["jge"] == 1 + len(gen.tiles)


class TestListing1Structure:
    def test_dynamic_kernel_has_lock_xadd(self):
        program = JitCodegen(spec()).build_dynamic_kernel()
        xadds = [i for i in program.instructions if i.mnemonic == "xadd"]
        assert len(xadds) == 1
        assert xadds[0].lock

    def test_batch_baked_as_immediate(self):
        program = JitCodegen(spec(batch=128)).build_dynamic_kernel()
        movs = [
            i for i in program.instructions
            if i.mnemonic == "mov" and getattr(i.operands[1], "value", None) == 128
        ]
        assert movs, "batch size must be baked into the instruction stream"


class TestGenerate:
    def test_generate_times_codegen(self):
        output = JitCodegen(spec()).generate()
        assert output.codegen_seconds > 0
        assert output.code_bytes == len(output.program.encode())

    def test_generated_code_encodes_and_decodes(self):
        from repro.isa.disasm import disassemble
        for dynamic in (False, True):
            output = JitCodegen(spec(d=45)).generate(dynamic=dynamic)
            decoded = disassemble(output.program.encode())
            assert len(decoded) == len(output.program.instructions)
