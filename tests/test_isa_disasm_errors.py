"""Strictness tests for the disassembler's error paths."""

import pytest

from repro.errors import DisassemblyError
from repro.isa.disasm import decode_one, disassemble
from repro.isa.encoder import encode_instruction
from repro.isa.instructions import Instruction
from repro.isa.registers import regs


class TestErrorPaths:
    def test_empty_buffer(self):
        with pytest.raises(DisassemblyError):
            decode_one(b"")

    def test_truncated_instruction(self):
        code = encode_instruction(Instruction("inc", (regs.r10,)))
        with pytest.raises(DisassemblyError):
            decode_one(code[:-1])

    def test_unknown_opcode(self):
        with pytest.raises(DisassemblyError):
            decode_one(b"\x06")  # invalid in 64-bit mode

    def test_unknown_0f_opcode(self):
        with pytest.raises(DisassemblyError):
            decode_one(b"\x0f\x0b")  # ud2: deliberately unsupported

    def test_unknown_vector_opcode(self):
        # valid VEX prefix, opcode we never emit
        with pytest.raises(DisassemblyError):
            decode_one(bytes([0xC4, 0xE1, 0x7C, 0x99, 0xC0]))

    def test_lock_on_vector_rejected(self):
        vxorps = encode_instruction(
            Instruction("vxorps", (regs.zmm0, regs.zmm0, regs.zmm0)))
        with pytest.raises(DisassemblyError):
            decode_one(b"\xf0" + vxorps)

    def test_garbage_stream_reports_offset(self):
        good = encode_instruction(Instruction("ret"))
        with pytest.raises(DisassemblyError):
            disassemble(good + b"\x06")
