"""Tests for the bench harness (on tiny scales to stay fast)."""

import numpy as np
import pytest

from repro.bench.harness import (
    BenchConfig,
    arithmetic_mean,
    geometric_mean,
    render_table,
)
from repro.errors import DatasetError

TINY = dict(scale=2.0 ** -22, threads=2, datasets=("uk-2005", "GAP-urand"))


class TestConfig:
    def test_rejects_unknown_dataset(self):
        with pytest.raises(DatasetError):
            BenchConfig(datasets=("uk-2005", "nope"))

    def test_matrix_and_dense_cached(self):
        config = BenchConfig(**TINY)
        assert config.matrix("uk-2005") is config.matrix("uk-2005")
        assert config.dense("uk-2005", 8) is config.dense("uk-2005", 8)

    def test_dense_shapes(self):
        config = BenchConfig(**TINY)
        x = config.dense("uk-2005", 16)
        assert x.shape == (config.matrix("uk-2005").ncols, 16)
        assert x.dtype == np.float32

    def test_aot_kernel_cached(self):
        config = BenchConfig(**TINY)
        assert config.aot_kernel("gcc") is config.aot_kernel("gcc")


class TestRunMemo:
    def test_run_cached(self):
        config = BenchConfig(**TINY)
        first = config.run("jit", "uk-2005", 8, timing=False)
        second = config.run("jit", "uk-2005", 8, timing=False)
        assert first is second

    def test_distinct_keys_not_shared(self):
        config = BenchConfig(**TINY)
        a = config.run("jit", "uk-2005", 8, timing=False)
        b = config.run("jit", "uk-2005", 8, split="nnz", timing=False)
        assert a is not b

    @pytest.mark.parametrize("system", ["jit", "mkl", "gcc", "aot:gcc",
                                        "icc-avx512"])
    def test_all_systems_runnable(self, system):
        config = BenchConfig(**TINY)
        result = config.run(system, "GAP-urand", 8, timing=False)
        assert result.counters.instructions > 0
        # correctness against the reference on the twin
        from repro.sparse import spmm_reference
        expected = spmm_reference(config.matrix("GAP-urand"),
                                  config.dense("GAP-urand", 8))
        assert np.allclose(result.y, expected, atol=1e-3)


class TestTemplateAmortization:
    """The grid compiles each address-free template exactly once."""

    def test_mkl_builds_once_across_the_grid(self, monkeypatch):
        from repro.aot.mkl import MklKernel

        builds = []
        real_build = MklKernel.build

        def counting_build(self):
            builds.append(self.lanes)
            return real_build(self)

        monkeypatch.setattr(MklKernel, "build", counting_build)
        config = BenchConfig(**TINY)
        for dataset in config.datasets:        # the fig10/fig11 pattern
            for d in (8, 16):
                for split in ("row", "nnz"):
                    config.run("mkl", dataset, d, split=split, timing=False)
        assert builds == [16]

    def test_aot_compiles_once_across_the_grid(self, monkeypatch):
        from repro.aot.compiler import AotCompiler

        compiles = []
        real_compile = AotCompiler.compile_spmm

        def counting_compile(self, passes=None, opt_level=0):
            compiles.append(self.personality.name)
            return real_compile(self, passes=passes, opt_level=opt_level)

        monkeypatch.setattr(AotCompiler, "compile_spmm", counting_compile)
        config = BenchConfig(**TINY)
        for dataset in config.datasets:
            for split in ("row", "nnz"):
                config.run("icc-avx512", dataset, 8, split=split,
                           timing=False)
        assert compiles == ["icc-avx512"]
        # the prefetch helper reuses the same shared artifact cache
        assert config.aot_kernel("icc-avx512") is not None
        assert compiles == ["icc-avx512"]

    def test_jit_codegen_stays_per_cell(self):
        # measurement policy: specialized JIT codegen is part of each
        # measured run (Table IV), never amortized across bench cells
        config = BenchConfig(**TINY)
        a = config.run("jit", "uk-2005", 8, timing=False)
        b = config.run("jit", "GAP-urand", 8, timing=False)
        assert a.codegen_seconds > 0 and b.codegen_seconds > 0
        assert not a.cache_hit and not b.cache_hit


class TestHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_render_table_alignment(self):
        table = render_table(["a", "metric"], [["x", "1"], ["longer", "22"]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to equal width
