"""Tests for the optimization-pass pipeline over the three-address IR.

Three layers: golden regression (the fixed-function ``opt_level=0``
lowering is bit-identical to the pre-pass-pipeline compiler output for
every personality), unit tests per transform, and hypothesis property
tests executing randomized straight-line IR on the simulated machine
before and after each pass — semantic preservation is checked on the
bytes the program stores, not on the shape of the rewritten IR.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aot.builder import IRBuilder
from repro.aot.compiler import (
    BASE_PASS_CONFIGS,
    AotCompiler,
    PERSONALITIES,
)
from repro.aot.ir import Function, Instr, IrType, VReg
from repro.aot.passes import (
    PASS_NAMES,
    PassConfig,
    eliminate_dead_code,
    fold_constants,
    max_register_pressure,
    reduce_strength,
    run_passes,
    schedule_blocks,
    verify_function,
)
from repro.errors import CompileError
from repro.machine import Cpu, CpuConfig, Memory

# ----------------------------------------------------------------------
# golden regression: opt_level=0 must reproduce the historical
# fixed-function lowering bit-for-bit (listing, encoding, spill area)
# ----------------------------------------------------------------------
GOLDEN = {
    "clang": ("d3fbada6ce700257", "4b4fcc6343ac4961", 320),
    "gcc": ("ed846c38ffe8e45b", "62e1374496dc16f1", 256),
    "icc": ("feadc49c20dec34a", "88860ba3d9e49710", 320),
    "icc-avx512": ("97f392187ae03f73", "fac43769088b0ee6", 384),
}


class TestGoldenRegression:
    @pytest.mark.parametrize("name", sorted(PERSONALITIES))
    def test_opt0_matches_prerefactor_output(self, name):
        kernel = AotCompiler(name).compile_spmm(opt_level=0)
        listing = hashlib.sha256(
            kernel.listing().encode()).hexdigest()[:16]
        encoding = hashlib.sha256(
            kernel.program.encode()).hexdigest()[:16]
        assert (listing, encoding, kernel.spill_bytes) == GOLDEN[name], (
            f"{name}: opt_level=0 no longer reproduces the fixed-"
            f"function lowering bit-for-bit")

    def test_personality_defaults_derive_from_one_table(self):
        # anti-drift: the personalities' unroll factors have exactly
        # one source of truth — the BASE_PASS_CONFIGS table
        assert set(BASE_PASS_CONFIGS) == set(PERSONALITIES)
        for name, personality in PERSONALITIES.items():
            assert personality.unroll == BASE_PASS_CONFIGS[name].unroll
            assert personality.pass_config(0) == BASE_PASS_CONFIGS[name]


class TestPassConfig:
    def test_ident_is_stable(self):
        assert PassConfig(unroll=4).ident() == "u4"
        assert PassConfig(unroll=2, fold=True, dce=True).ident() \
            == "u2+fold+dce"
        full = PassConfig(unroll=1, fold=True, strength=True, dce=True,
                          schedule=True)
        assert full.ident() == "u1+" + "+".join(PASS_NAMES)

    def test_levels(self):
        base = PassConfig(unroll=4)
        assert base.at_level(0) == base
        assert base.at_level(1).enabled_passes() == ("fold", "strength",
                                                     "dce")
        assert base.at_level(2).enabled_passes() == PASS_NAMES
        assert base.at_level(2).unroll == 4  # levels pick passes only

    def test_hashable_and_bad_unroll_rejected(self):
        assert hash(PassConfig(unroll=2)) == hash(PassConfig(unroll=2))
        with pytest.raises(CompileError):
            PassConfig(unroll=0)


# ----------------------------------------------------------------------
# verifier
# ----------------------------------------------------------------------
class TestVerifier:
    def test_accepts_every_personality_kernel(self):
        for personality in PERSONALITIES.values():
            verify_function(personality.kernel())

    def test_use_before_def_rejected(self):
        b = IRBuilder("bad", 1, ("p",))
        ghost = VReg("ghost", IrType.I64)
        b.add(ghost, 1)
        b.ret()
        with pytest.raises(CompileError, match="before definition"):
            verify_function(b.finish())

    def test_use_before_def_across_blocks_rejected(self):
        # defined on only one path into the join block
        b = IRBuilder("bad", 1, ("p",))
        cond = b.const(1)
        b.cbr("ge", cond, 0, "left", "right")
        b.start_block("left")
        maybe = b.const(7, "maybe")
        b.br("join")
        b.start_block("right")
        b.br("join")
        b.start_block("join")
        b.add(maybe, 1)
        b.ret()
        with pytest.raises(CompileError, match="before definition"):
            verify_function(b.finish())

    def test_loop_carried_definition_accepted(self):
        # the SpMM kernels are exactly this shape: defs flowing around
        # a back edge must not be flagged
        b = IRBuilder("loop", 1, ("n",))
        i = b.const(0, "i")
        b.br("head")
        b.start_block("head", depth=1)
        b.cbr("ge", i, b.param(0), "exit", "body")
        b.start_block("body", depth=1)
        b.iadd(i, 1)
        b.br("head")
        b.start_block("exit")
        b.ret()
        verify_function(b.finish())

    def test_missing_terminator_rejected(self):
        func = Function("bad")
        func.block("entry").instrs.append(
            Instr("const", VReg("x", IrType.I64), (1,)))
        with pytest.raises(CompileError):
            verify_function(func)

    def test_immediate_address_base_rejected(self):
        func = Function("bad")
        entry = func.block("entry")
        entry.instrs.append(Instr("load", VReg("d", IrType.I64), (),
                                  {"base": 0x1000, "disp": 0, "scale": 1,
                                   "size": 8}))
        entry.instrs.append(Instr("ret"))
        with pytest.raises(CompileError, match="must be an integer vreg"):
            verify_function(func)

    def test_shl_by_register_rejected(self):
        func = Function("bad")
        entry = func.block("entry")
        x = VReg("x", IrType.I64)
        amount = VReg("k", IrType.I64)
        entry.instrs.append(Instr("const", x, (1,)))
        entry.instrs.append(Instr("const", amount, (2,)))
        entry.instrs.append(Instr("shl", VReg("r", IrType.I64),
                                  (x, amount)))
        entry.instrs.append(Instr("ret"))
        with pytest.raises(CompileError, match="shl by register"):
            verify_function(func)


# ----------------------------------------------------------------------
# unit tests per transform
# ----------------------------------------------------------------------
def _single_block(func: Function) -> list[Instr]:
    return func.blocks[0].instrs


class TestFold:
    def test_constants_fold_with_wraparound(self):
        b = IRBuilder("f", 0)
        big = b.const((1 << 62) + 3)
        b.store(b.mul(big, 4), b.const(0x1000))
        b.ret()
        folded = fold_constants(b.finish())
        consts = {i.dst.name: i.srcs[0] for i in _single_block(folded)
                  if i.op == "const"}
        # (2^62+3)*4 wraps to 12 in 64-bit two's complement — folding
        # must agree with the machine, not with Python's bignums
        assert 12 in consts.values()

    def test_known_value_becomes_immediate(self):
        b = IRBuilder("f", 1, ("p",))
        k = b.const(5)
        b.store(b.add(b.param(0), k), b.param(0))
        b.ret()
        folded = fold_constants(b.finish())
        adds = [i for i in _single_block(folded) if i.op == "add"]
        assert adds[0].srcs[1] == 5  # vreg operand replaced by imm

    def test_huge_value_not_substituted(self):
        # values outside signed imm32 can't be lowered as immediates
        b = IRBuilder("f", 1, ("p",))
        k = b.const(1 << 40)
        b.store(b.add(b.param(0), k), b.param(0))
        b.ret()
        folded = fold_constants(b.finish())
        adds = [i for i in _single_block(folded) if i.op == "add"]
        assert isinstance(adds[0].srcs[1], VReg)

    def test_algebraic_identities(self):
        b = IRBuilder("f", 1, ("p",))
        x = b.param(0)
        b.store(b.add(x, 0), x)        # x + 0 -> mov
        b.store(b.mul(x, 1), x, disp=8)   # x * 1 -> mov
        b.store(b.mul(x, 0), x, disp=16)  # x * 0 -> const 0
        b.ret()
        folded = fold_constants(b.finish())
        ops = [i.op for i in _single_block(folded)]
        assert ops.count("mov") == 2
        assert "mul" not in ops and "add" not in ops


class TestStrength:
    def test_mul_pow2_becomes_shl(self):
        b = IRBuilder("s", 1, ("p",))
        b.store(b.mul(b.param(0), 8), b.param(0))
        b.ret()
        reduced = reduce_strength(b.finish())
        shls = [i for i in _single_block(reduced) if i.op == "shl"]
        assert len(shls) == 1 and shls[0].srcs[1] == 3
        assert not any(i.op == "mul" for i in _single_block(reduced))

    def test_non_pow2_mul_kept(self):
        b = IRBuilder("s", 1, ("p",))
        b.store(b.mul(b.param(0), 6), b.param(0))
        b.ret()
        reduced = reduce_strength(b.finish())
        assert any(i.op == "mul" for i in _single_block(reduced))

    def test_address_add_folds_into_displacement(self):
        b = IRBuilder("s", 1, ("p",))
        bumped = b.add(b.param(0), 16, "bumped")
        b.store(b.load(bumped), b.param(0))
        b.ret()
        reduced = eliminate_dead_code(reduce_strength(b.finish()))
        loads = [i for i in _single_block(reduced) if i.op == "load"]
        assert loads[0].attrs["base"] is b.param(0)
        assert loads[0].attrs["disp"] == 16
        # the add is dead after folding and DCE removes it
        assert not any(i.op == "add" for i in _single_block(reduced))


class TestDce:
    def test_dead_chain_removed(self):
        b = IRBuilder("d", 1, ("p",))
        live = b.const(7, "live")
        dead = b.mul(b.const(3), 5, "dead")
        b.add(dead, 1, "deader")
        b.store(live, b.param(0))
        b.ret()
        swept = eliminate_dead_code(b.finish())
        names = {i.dst.name for i in _single_block(swept)
                 if i.dst is not None}
        assert any(n.startswith("live") for n in names)
        assert not any(n.startswith(("dead", "deader")) for n in names)

    def test_stores_never_removed(self):
        b = IRBuilder("d", 1, ("p",))
        b.store(b.const(1), b.param(0))
        b.ret()
        swept = eliminate_dead_code(b.finish())
        assert any(i.op == "store" for i in _single_block(swept))

    def test_unreachable_block_removed(self):
        b = IRBuilder("d", 1, ("p",))
        b.br("end")
        b.start_block("island")
        b.br("end")
        b.start_block("end")
        b.ret()
        func = b.finish()
        # orphan the island: nothing branches to it
        func.block_map()["island"].instrs[-1:] = [Instr("ret")]
        func.blocks[0].instrs[-1] = Instr("br", None, (), {"label": "end"})
        swept = eliminate_dead_code(func)
        assert [blk.label for blk in swept.blocks] == ["entry", "end"]


class TestSchedule:
    def _func(self):
        b = IRBuilder("sch", 1, ("p",))
        p = b.param(0)
        a = b.load(p, hint="a")
        bb = b.load(p, disp=8, hint="b")
        c = b.add(a, bb, "c")
        d = b.load(p, disp=16, hint="d")
        e = b.add(c, d, "e")
        b.store(e, p, disp=24)
        b.ret()
        return b.finish()

    def test_deterministic(self):
        one = schedule_blocks(self._func())
        two = schedule_blocks(self._func())
        assert [str(i) for i in _single_block(one)] \
            == [str(i) for i in _single_block(two)]

    def test_dependences_preserved(self):
        scheduled = schedule_blocks(self._func())
        defined = set()
        for instr in _single_block(scheduled):
            assert all(r in defined for r in instr.vregs_read()
                       if r.name != "p")
            defined.update(instr.vregs_written())

    def test_terminator_stays_last(self):
        scheduled = schedule_blocks(self._func())
        assert _single_block(scheduled)[-1].op == "ret"

    def test_loads_hoist_above_independent_compute(self):
        # the point of the pass: independent loads issue before the
        # dependent adds that follow them in program order
        scheduled = schedule_blocks(self._func())
        ops = [i.op for i in _single_block(scheduled)]
        assert ops.index("load", ops.index("load") + 1) < ops.index("add")


class TestInfrastructure:
    def test_clone_is_deep_and_equal(self):
        func = PERSONALITIES["gcc"].kernel()
        copy = func.clone()
        assert copy is not func
        assert copy.listing() == func.listing()
        copy.blocks[0].instrs.append(Instr("ret"))
        assert copy.listing() != func.listing()  # no aliasing

    def test_run_passes_verifies_output(self):
        func = PERSONALITIES["gcc"].kernel()
        out = run_passes(func, PassConfig(unroll=1, fold=True, dce=True))
        verify_function(out)

    def test_register_pressure_grows_with_unroll(self):
        low = max_register_pressure(PERSONALITIES["gcc"].kernel(
            PassConfig(unroll=1)))
        high = max_register_pressure(PERSONALITIES["gcc"].kernel(
            PassConfig(unroll=8)))
        assert high["int"] > low["int"]


# ----------------------------------------------------------------------
# property tests: randomized straight-line IR executes identically
# before and after each transform
# ----------------------------------------------------------------------
_SLOTS = 8

_op = st.one_of(
    st.tuples(st.just("const"),
              st.integers(min_value=-(1 << 32), max_value=1 << 32)),
    st.tuples(st.just("bin"),
              st.sampled_from(["add", "sub", "mul", "and"]),
              st.integers(0, 255), st.integers(0, 255)),
    st.tuples(st.just("bini"),
              st.sampled_from(["add", "sub", "mul", "and"]),
              st.integers(0, 255),
              st.integers(min_value=-(1 << 20), max_value=1 << 20)),
    st.tuples(st.just("shl"), st.integers(0, 255), st.integers(0, 12)),
    st.tuples(st.just("load"), st.integers(0, _SLOTS - 1)),
    st.tuples(st.just("store"), st.integers(0, 255),
              st.integers(0, _SLOTS - 1)),
)


def _build(spec) -> Function:
    """Deterministically materialize a drawn op list as IR."""
    b = IRBuilder("rand", 1, ("buf",))
    buf = b.param(0)
    values = [b.const(1, "seed")]
    for item in spec:
        kind = item[0]
        if kind == "const":
            values.append(b.const(item[1]))
        elif kind == "bin":
            _, op, i, j = item
            a, c = values[i % len(values)], values[j % len(values)]
            values.append(b._int_bin(op, a, c, op))
        elif kind == "bini":
            _, op, i, imm = item
            values.append(b._int_bin(op, values[i % len(values)], imm, op))
        elif kind == "shl":
            _, i, amount = item
            values.append(b.shl(values[i % len(values)], amount))
        elif kind == "load":
            values.append(b.load(buf, disp=8 * item[1]))
        else:  # store
            _, i, slot = item
            b.store(values[i % len(values)], buf, disp=8 * slot)
    b.store(values[-1], buf, disp=0)  # always at least one observation
    b.ret()
    return b.finish()


def _execute(func: Function, passes: PassConfig | None) -> bytes:
    kernel = AotCompiler("gcc").compile_function(func, passes=passes)
    memory = Memory()
    buffer = (np.arange(_SLOTS, dtype=np.int64) * 3 - 7).copy()
    base = memory.map_array(buffer)
    init = {"rdi": base, "rbp": 0}
    if kernel.spill_bytes:
        init["rbp"], _ = memory.map_zeros(kernel.spill_bytes)
    Cpu(memory, CpuConfig(timing=False)).run(kernel.program, init_gpr=init)
    return buffer.tobytes()


_CONFIGS = [
    PassConfig(unroll=1, fold=True),
    PassConfig(unroll=1, strength=True),
    PassConfig(unroll=1, dce=True),
    PassConfig(unroll=1, schedule=True),
    PassConfig(unroll=1, fold=True, strength=True, dce=True,
               schedule=True),
]


@settings(max_examples=60, deadline=None)
@given(st.lists(_op, min_size=1, max_size=24))
def test_passes_preserve_semantics(spec):
    func = _build(spec)
    verify_function(func)
    baseline = _execute(func, None)
    for config in _CONFIGS:
        assert _execute(func, config) == baseline, config.ident()
