"""Tests for the feedback-directed pass search and its plumbing.

Covers: search determinism, the never-regress and bit-identity
contracts, memo persistence through the ``export_autotune_memo`` /
``seed_autotune_memo`` gateway path, the ``opt_level`` API surface end
to end, and the observability counters the search emits.
"""

import numpy as np
import pytest

from repro.aot.search import (
    sample_operands,
    search_passes,
    unroll_candidates,
)
from repro.api import ExecutionConfig, get_system
from repro.core.autotune import (
    clear_autotune_memo,
    export_autotune_memo,
    seed_autotune_memo,
    autotune_memo_stats,
)
from repro.errors import ShapeError
from repro.obs.metrics import get_registry
from tests.conftest import random_csr


@pytest.fixture(autouse=True)
def _clean_memo():
    clear_autotune_memo()
    yield
    clear_autotune_memo()


@pytest.fixture
def matrix(rng):
    return random_csr(rng, 80, 60, density=0.15, name="searchmat")


class TestUnrollCandidates:
    @pytest.mark.parametrize("name", ["gcc", "clang", "icc", "icc-avx512"])
    def test_lattice_filtered_by_pressure(self, name):
        candidates = unroll_candidates(name)
        assert candidates[0] == 1
        assert all(a < b for a, b in zip(candidates, candidates[1:]))

    def test_personality_default_always_survives(self):
        assert 4 in unroll_candidates("icc")  # icc's own default


class TestSampleOperands:
    def test_downsamples_large_matrices(self, rng):
        big = random_csr(rng, 2000, 100, density=0.1, name="big")
        sampled, x = sample_operands(big, 16)
        assert sampled.nnz < big.nnz
        assert sampled.ncols == big.ncols  # column space kept intact
        assert x.shape == (big.ncols, 16)

    def test_small_matrices_kept_whole(self, matrix):
        sampled, _ = sample_operands(matrix, 16)
        assert sampled is matrix

    def test_deterministic(self, rng):
        big = random_csr(rng, 2000, 100, density=0.1, name="big")
        one, x_one = sample_operands(big, 16)
        two, x_two = sample_operands(big, 16)
        assert one.fingerprint() == two.fingerprint()
        assert np.array_equal(x_one, x_two)

    def test_d_capped(self, matrix):
        _, x = sample_operands(matrix, 4096)
        assert x.shape[1] <= 16


class TestSearch:
    def test_never_regresses_and_is_deterministic(self, matrix):
        one = search_passes("gcc", matrix, 16, budget=8, memo=False)
        two = search_passes("gcc", matrix, 16, budget=8, memo=False)
        assert one.config == two.config
        assert one.scores == two.scores  # same candidates, same order
        assert one.cycles <= one.baseline_cycles

    def test_winner_is_bit_identical_end_to_end(self, matrix):
        choice = search_passes("gcc", matrix, 16, budget=8, memo=False)
        x = np.random.default_rng(5).standard_normal(
            (matrix.ncols, 16), dtype=np.float32)
        fixed = get_system("aot:gcc").prepare(
            split="row", threads=1, dynamic=False, backend="sim-fused",
            opt_level=0).bind(matrix, x).execute().y
        searched = get_system("aot:gcc").prepare(
            split="row", threads=1, dynamic=False, backend="sim-fused",
            opt_level=3, search_budget=8).bind(matrix, x).execute().y
        assert np.array_equal(fixed, searched, equal_nan=True)
        assert choice.cycles <= choice.baseline_cycles

    def test_budget_bounds_evaluations(self, matrix):
        choice = search_passes("gcc", matrix, 16, budget=3, memo=False)
        assert choice.evaluated <= 3

    def test_conformance_gate_rejects_reassociation(self, rng):
        # icc-avx512's unrolled vector strips shift nonzeros between
        # the vector main loop and the scalar remainder, changing f32
        # accumulation order — the gate must reject those candidates,
        # never accept-and-approximate
        skewed = random_csr(rng, 60, 80, density=0.35, name="skewed")
        choice = search_passes("icc-avx512", skewed, 16, budget=10,
                               memo=False)
        rejected = [ident for ident, cycles in choice.scores
                    if cycles < 0]
        assert rejected, "expected at least one rejected candidate"
        assert all(not ident.startswith("u1") for ident in rejected)
        assert choice.config.unroll == 1

    def test_scores_record_every_candidate(self, matrix):
        choice = search_passes("gcc", matrix, 16, budget=8, memo=False)
        assert len(choice.scores) == choice.evaluated
        assert choice.scores[0][1] == choice.baseline_cycles


class TestMemo:
    def test_verdict_memoized(self, matrix):
        first = search_passes("gcc", matrix, 16, budget=8)
        assert autotune_memo_stats()["pass_entries"] == 1
        second = search_passes("gcc", matrix, 16, budget=8)
        assert second is first  # memo hit returns the stored verdict

    def test_roundtrips_through_export_and_seed(self, matrix):
        first = search_passes("gcc", matrix, 16, budget=8)
        exported = export_autotune_memo()
        clear_autotune_memo()
        assert seed_autotune_memo(exported) >= 1
        counter = get_registry().counter("aot_search_iterations_total",
                                         personality="gcc")
        before = counter.value
        again = search_passes("gcc", matrix, 16, budget=8)
        assert counter.value == before  # no re-evaluation after seeding
        assert again.config == first.config
        assert again.scores == first.scores

    def test_geometry_is_part_of_the_key(self, matrix):
        from repro.machine.cache import CacheConfig
        search_passes("gcc", matrix, 16, budget=4)
        search_passes("gcc", matrix, 16, budget=4,
                      l1=CacheConfig(size_bytes=4096, ways=4))
        assert autotune_memo_stats()["pass_entries"] == 2


class TestConfigSurface:
    def test_opt_levels_accepted(self):
        for level in (0, 1, 2, 3):
            assert ExecutionConfig(opt_level=level).opt_level == level

    def test_bad_opt_level_rejected(self):
        with pytest.raises(ShapeError):
            ExecutionConfig(opt_level=4)
        with pytest.raises(ShapeError):
            ExecutionConfig(opt_level=-1)

    def test_bad_search_budget_rejected(self):
        with pytest.raises(ShapeError):
            ExecutionConfig(search_budget=0)

    @pytest.mark.parametrize("level", [1, 2])
    def test_static_opt_levels_bit_identical(self, matrix, level):
        x = np.random.default_rng(9).standard_normal(
            (matrix.ncols, 8), dtype=np.float32)
        base = get_system("aot:clang").prepare(
            split="row", threads=1, dynamic=False, backend="sim-fused",
            opt_level=0).bind(matrix, x).execute().y
        opt = get_system("aot:clang").prepare(
            split="row", threads=1, dynamic=False, backend="sim-fused",
            opt_level=level).bind(matrix, x).execute().y
        assert np.array_equal(base, opt, equal_nan=True)


class TestObservability:
    def test_counters_in_prometheus_exposition(self, matrix):
        from repro.aot.passes import PassConfig, run_passes
        from repro.aot.compiler import PERSONALITIES
        from repro.obs import prometheus_text

        run_passes(PERSONALITIES["gcc"].kernel(),
                   PassConfig(unroll=1, fold=True))
        search_passes("gcc", matrix, 16, budget=2, memo=False)
        text = prometheus_text()
        assert "aot_pass_runs_total" in text
        assert "aot_search_iterations_total" in text
        assert "autotune_memo_pass_entries" in text
