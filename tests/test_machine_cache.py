"""Tests for the set-associative cache model."""

import pytest

from repro.machine.cache import Cache, CacheConfig, CacheHierarchy


class TestConfig:
    def test_num_sets(self):
        config = CacheConfig(size_bytes=32 * 1024, ways=8, line_bytes=64)
        assert config.num_sets == 64

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 1024, ways=1, line_bytes=64).num_sets


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(CacheConfig(1024, 2, 64))
        assert cache.access(5) is False
        assert cache.access(5) is True

    def test_lru_eviction(self):
        cache = Cache(CacheConfig(2 * 64, 2, 64))  # 1 set, 2 ways
        cache.access(0)
        cache.access(1)
        cache.access(0)  # 0 is now most-recent
        cache.access(2)  # evicts 1
        assert cache.access(0) is True
        assert cache.access(1) is False

    def test_distinct_sets_do_not_conflict(self):
        cache = Cache(CacheConfig(4 * 64, 1, 64))  # 4 sets, direct-mapped
        assert cache.access(0) is False
        assert cache.access(1) is False
        assert cache.access(0) is True  # different set, no eviction

    def test_reset(self):
        cache = Cache(CacheConfig(1024, 2, 64))
        cache.access(5)
        cache.reset()
        assert cache.access(5) is False


class TestHierarchy:
    def test_first_access_goes_to_memory(self):
        h = CacheHierarchy()
        assert h.access(0x1000, 4) == "mem"

    def test_second_access_hits_l1(self):
        h = CacheHierarchy()
        h.access(0x1000, 4)
        assert h.access(0x1000, 4) == "l1"

    def test_sequential_accesses_share_line(self):
        h = CacheHierarchy()
        h.access(0x1000, 4)
        assert h.access(0x1004, 4) == "l1"  # same 64-byte line

    def test_l2_serves_l1_evictions(self):
        h = CacheHierarchy(
            l1=CacheConfig(2 * 64, 2, 64),      # tiny L1: 1 set, 2 ways
            l2=CacheConfig(64 * 64, 64, 64),    # big L2
        )
        h.access(0 * 64, 4)
        h.access(1 * 64, 4)
        h.access(2 * 64, 4)  # evicts line 0 from L1; still in L2
        assert h.access(0 * 64, 4) == "l2"

    def test_straddling_access_touches_both_lines(self):
        h = CacheHierarchy()
        h.access(0x1000, 64)   # loads line at 0x1000
        # 60 bytes into the line, a 16-byte access straddles into 0x1040
        assert h.access(0x103C, 16) == "mem"  # second line is cold

    def test_sequential_stream_miss_rate_is_line_rate(self):
        # CCM's argument (paper Fig. 7): sequential access misses once per
        # line; strided access misses every time.
        h = CacheHierarchy()
        misses = sum(h.access(0x10000 + 4 * i, 4) != "l1" for i in range(1024))
        assert misses == 1024 * 4 // 64  # one miss per 64-byte line

    def test_strided_stream_misses_every_line(self):
        h = CacheHierarchy(l1=CacheConfig(32 * 1024, 8, 64),
                           l2=CacheConfig(64 * 1024, 16, 64))
        stride = 4096  # one access per page: every access a new line
        misses = sum(
            h.access(0x100000 + stride * i, 4) != "l1" for i in range(512)
        )
        assert misses == 512
