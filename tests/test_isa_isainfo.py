"""Tests for ISA levels and vector geometry."""

import pytest

from repro.isa.isainfo import ISA_SPECS, IsaLevel, VEC_LANES_F32, isa_spec


class TestLevels:
    def test_parse_strings(self):
        assert IsaLevel.parse("avx512") is IsaLevel.AVX512
        assert IsaLevel.parse("AVX2") is IsaLevel.AVX2
        assert IsaLevel.parse(IsaLevel.SSE2) is IsaLevel.SSE2

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            IsaLevel.parse("avx10")

    def test_all_levels_have_specs(self):
        for level in IsaLevel:
            assert level in ISA_SPECS


class TestSpecs:
    def test_avx512_geometry(self):
        spec = isa_spec("avx512")
        assert spec.max_lanes_f32 == 16
        assert spec.num_vector_regs == 32
        assert spec.has_fma and spec.has_gather
        assert spec.register_widths() == (512, 256, 128)

    def test_avx2_geometry(self):
        spec = isa_spec("avx2")
        assert spec.max_lanes_f32 == 8
        assert spec.num_vector_regs == 16
        assert spec.register_widths() == (256, 128)

    def test_sse2_geometry(self):
        spec = isa_spec("sse2")
        assert spec.max_lanes_f32 == 4
        assert not spec.has_fma and not spec.has_gather

    def test_scalar_geometry(self):
        # scalar = no packed ops on an AVX-512-capable core (paper Table II
        # keeps accumulators in XMM0-7 and the value in XMM31)
        spec = isa_spec("scalar")
        assert spec.max_lanes_f32 == 1
        assert spec.num_vector_regs == 32
        assert spec.register_widths() == ()

    def test_lane_table(self):
        assert VEC_LANES_F32 == {128: 4, 256: 8, 512: 16}
