"""Tests for the prepare → bind → execute pipeline."""

import numpy as np
import pytest

import repro
from repro.api import ExecutionConfig, get_system
from repro.core.runner import run_jit, run_mkl
from repro.errors import ReproError, ShapeError
from repro.serve import KernelCache
from repro.sparse import spmm_reference
from tests.conftest import random_csr


class TestPipelineEquivalence:
    def test_jit_pipeline_matches_run_jit(self, rng):
        matrix = random_csr(rng, 40, 30, density=0.2)
        x = rng.random((30, 8)).astype(np.float32)
        legacy = run_jit(matrix, x, split="nnz", threads=3, timing=False)
        config = ExecutionConfig(split="nnz", threads=3, timing=False)
        piped = get_system("jit").prepare(config).bind(matrix, x).execute()
        assert np.array_equal(piped.y, legacy.y)
        assert piped.counters.instructions == legacy.counters.instructions
        assert piped.system == legacy.system == "jit"
        assert piped.partitions == legacy.partitions

    @pytest.mark.parametrize("system", ["aot:gcc", "aot:icc-avx512", "mkl"])
    def test_template_systems_match_reference(self, rng, system):
        matrix = random_csr(rng, 30, 25, density=0.2)
        x = rng.random((25, 8)).astype(np.float32)
        result = repro.run(matrix, x, system=system, threads=2, timing=False)
        assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-4)

    def test_run_accepts_prebuilt_config(self, rng):
        matrix = random_csr(rng, 20, 20)
        x = rng.random((20, 4)).astype(np.float32)
        config = ExecutionConfig(split="merge", threads=2, timing=False)
        result = repro.run(matrix, x, config=config)
        assert result.split == "merge"
        assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-4)

    def test_jit_auto_split_via_pipeline(self, rng):
        matrix = random_csr(rng, 40, 30)
        x = rng.random((30, 8)).astype(np.float32)
        result = repro.run(matrix, x, split="auto", threads=3, timing=False)
        assert result.split in ("row", "nnz", "merge")
        assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-4)


class TestArtifactReuse:
    def test_jit_artifact_reuses_cached_kernel_across_binds(self, rng):
        matrix = random_csr(rng, 30, 25, density=0.2)
        x = rng.random((25, 8)).astype(np.float32)
        artifact = get_system("jit").prepare(
            ExecutionConfig(threads=2, timing=False, cache=KernelCache()))
        first = artifact.bind(matrix, x)
        second = artifact.bind(matrix, x)
        assert not first.cache_hit and second.cache_hit
        assert second.kernel is first.kernel
        assert second.codegen_seconds == 0.0

    def test_template_artifact_compiles_once_without_cache(self, rng):
        matrix = random_csr(rng, 25, 25, density=0.2)
        x = rng.random((25, 8)).astype(np.float32)
        artifact = get_system("aot:gcc").prepare(
            ExecutionConfig(threads=2, timing=False))
        first = artifact.bind(matrix, x)
        second = artifact.bind(matrix, x)
        assert not first.cache_hit and second.cache_hit
        assert second.kernel is first.kernel
        assert artifact.kernel is first.kernel

    def test_jit_artifact_has_no_prepare_time_kernel(self):
        artifact = get_system("jit").prepare(ExecutionConfig())
        with pytest.raises(ReproError):
            _ = artifact.kernel

    def test_injected_kernel_rejected_for_specialized_system(self):
        with pytest.raises(ReproError):
            get_system("jit").prepare(ExecutionConfig(), kernel=object())

    def test_mkl_cache_via_run_mkl(self, rng):
        matrix = random_csr(rng, 20, 20, density=0.3)
        x = rng.random((20, 4)).astype(np.float32)
        cache = KernelCache()
        a = run_mkl(matrix, x, threads=2, timing=False, cache=cache)
        b = run_mkl(matrix, x, threads=2, timing=False, cache=cache)
        assert not a.cache_hit and b.cache_hit
        assert b.program is a.program
        assert np.array_equal(a.y, b.y)


class TestPlanReuse:
    def test_refresh_serves_new_x_on_same_plan(self, rng):
        matrix = random_csr(rng, 30, 25, density=0.2)
        x1 = rng.random((25, 8)).astype(np.float32)
        x2 = rng.random((25, 8)).astype(np.float32)
        plan = get_system("jit").prepare(
            ExecutionConfig(threads=3, timing=False)).bind(matrix, x1)
        y1 = plan.execute().y.copy()
        y2 = plan.refresh(x2).execute().y.copy()
        assert np.array_equal(y1, spmm_reference(matrix, x1))
        assert np.array_equal(y2, spmm_reference(matrix, x2))

    def test_refresh_rejects_other_width(self, rng):
        matrix = random_csr(rng, 20, 20)
        plan = get_system("jit").prepare(
            ExecutionConfig(threads=2, timing=False)).bind(
                matrix, rng.random((20, 8)).astype(np.float32))
        with pytest.raises(ShapeError):
            plan.refresh(rng.random((20, 16)).astype(np.float32))

    def test_template_plan_refresh(self, rng):
        matrix = random_csr(rng, 25, 25, density=0.2)
        x1 = rng.random((25, 8)).astype(np.float32)
        x2 = rng.random((25, 8)).astype(np.float32)
        plan = get_system("mkl").prepare(
            ExecutionConfig(threads=2, timing=False)).bind(matrix, x1)
        y1 = plan.execute().y.copy()
        y2 = plan.refresh(x2).execute().y.copy()
        assert np.array_equal(y1, spmm_reference(matrix, x1))
        assert np.array_equal(y2, spmm_reference(matrix, x2))

    def test_plan_multiply_fast_path(self, rng):
        matrix = random_csr(rng, 30, 25, density=0.2)
        x = rng.random((25, 8)).astype(np.float32)
        plan = get_system("jit").prepare(
            ExecutionConfig(threads=3, timing=False)).bind(
                matrix, x, ensure_kernel=False)
        assert np.array_equal(plan.multiply(x), spmm_reference(matrix, x))
        assert plan.kernel is None  # fast path never triggered codegen

    def test_lazy_bind_resolves_on_execute(self, rng):
        matrix = random_csr(rng, 20, 20, density=0.3)
        x = rng.random((20, 4)).astype(np.float32)
        cache = KernelCache()
        plan = get_system("jit").prepare(
            ExecutionConfig(threads=2, timing=False, cache=cache)).bind(
                matrix, x, ensure_kernel=False)
        assert plan.kernel is None and len(cache) == 0
        result = plan.execute()
        assert plan.kernel is not None and len(cache) == 1
        assert np.array_equal(result.y, spmm_reference(matrix, x))
