"""Tests for superblock compilation and the content-keyed closure cache."""

import gc

import numpy as np
import pytest

from repro.errors import ExecutionLimitExceeded, MachineError
from repro.isa.assembler import Assembler
from repro.isa.operands import Imm, Mem
from repro.isa.registers import regs, zmm
from repro.machine import Cpu, CpuConfig, Machine, Memory, ThreadSpec


def loop_program(data_base: int, out_base: int, count: int):
    """Sum data[0:count) into out[0], with a multi-instruction loop body."""
    asm = Assembler("loop")
    asm.mov(regs.rax, Imm(data_base, 64))
    asm.mov(regs.rbx, 0)          # accumulator
    asm.mov(regs.rcx, 0)          # index
    asm.label("loop")
    asm.cmp(regs.rcx, count)
    asm.jge("done")
    asm.add(regs.rbx, Mem(regs.rax, regs.rcx, 8, 0, size=8))
    asm.inc(regs.rcx)
    asm.jmp("loop")
    asm.label("done")
    asm.mov(regs.rdx, Imm(out_base, 64))
    asm.mov(Mem(regs.rdx, size=8), regs.rbx)
    asm.ret()
    return asm.finish()


def setup_memory(count=20):
    mem = Memory()
    data = np.arange(1, count + 1, dtype=np.int64)
    out = np.zeros(1, dtype=np.int64)
    db = mem.map_array(data)
    ob = mem.map_array(out)
    return mem, db, ob, out, int(data.sum())


class TestBlockDiscovery:
    def test_block_starts_at_entry_labels_and_branch_successors(self):
        program = loop_program(0x1000, 0x2000, 4)
        # layout: 0-2 prologue, 3 cmp, 4 jge, 5 add, 6 inc, 7 jmp,
        #         8 mov, 9 mov-store, 10 ret
        assert program.block_starts() == [0, 3, 5, 8]

    def test_superblock_table_shape(self):
        program = loop_program(0x1000, 0x2000, 4)
        cpu = Cpu(Memory(), CpuConfig(timing=False))
        table = cpu.superblocks(program)
        starts = [block.start for block in table if block is not None]
        assert starts == [0, 3, 5, 8]
        lengths = {block.start: block.length
                   for block in table if block is not None}
        # prologue (3 insns, falls through into the loop label)
        assert lengths[0] == 3
        # loop header: cmp + jge terminator
        assert lengths[3] == 2
        # loop body: add + inc + jmp terminator
        assert lengths[5] == 3
        # epilogue: mov + store + ret terminator
        assert lengths[8] == 3

    def test_timing_cpu_refuses_superblocks(self):
        program = loop_program(0x1000, 0x2000, 4)
        cpu = Cpu(Memory(), CpuConfig(timing=True))
        with pytest.raises(MachineError, match="counts fidelity"):
            cpu.superblocks(program)


class TestFusedEquivalence:
    def test_single_cpu_fused_matches_stepped(self):
        mem, db, ob, out, expected = setup_memory()
        program = loop_program(db, ob, 20)
        stepped = Cpu(mem, CpuConfig(timing=False))
        counters_stepped = stepped.run(program)
        first = out[0]
        out[0] = 0
        fused_cpu = Cpu(mem, CpuConfig(timing=False))
        counters_fused = fused_cpu.run(program, fused=True)
        assert out[0] == first == expected
        assert counters_stepped.as_dict() == counters_fused.as_dict()
        assert fused_cpu.gpr == stepped.gpr

    def test_entry_mid_block_falls_back_to_stepping(self):
        mem, db, ob, out, _ = setup_memory()
        program = loop_program(db, ob, 20)
        # entry index 1 is inside the prologue block: no superblock
        # covers it, so execution starts on per-instruction steps (rax
        # is preloaded to compensate for the skipped instruction)
        cpu = Cpu(mem, CpuConfig(timing=False))
        cpu.set_gpr("rax", db)
        cpu.run(program, entry=1, fused=True)
        assert out[0] == sum(range(1, 21))

    def test_fuel_limit_is_exact_under_fusion(self):
        for fuel in (1, 2, 3, 7, 10, 50):
            mem_a = setup_memory(1000)
            mem_b = setup_memory(1000)
            prog_a = loop_program(mem_a[1], mem_a[2], 1000)
            prog_b = loop_program(mem_b[1], mem_b[2], 1000)
            cpu_a = Cpu(mem_a[0], CpuConfig(timing=False))
            cpu_b = Cpu(mem_b[0], CpuConfig(timing=False))
            with pytest.raises(ExecutionLimitExceeded):
                cpu_a.run(prog_a, fuel=fuel)
            with pytest.raises(ExecutionLimitExceeded):
                cpu_b.run(prog_b, fuel=fuel, fused=True)
            # the raise happens at the same instruction: identical
            # architectural and counter state either way
            assert cpu_a.gpr == cpu_b.gpr
            assert cpu_a.counters.as_dict() == cpu_b.counters.as_dict()

    @pytest.mark.parametrize("quantum", [1, 2, 3, 5, 8, 64])
    def test_machine_fused_matches_stepped_per_quantum(self, quantum):
        results = []
        for fused in (False, True):
            mem, db, ob, out, expected = setup_memory(50)
            program = loop_program(db, ob, 50)
            machine = Machine(mem, CpuConfig(timing=False), quantum=quantum)
            merged, per_thread = machine.run(
                [ThreadSpec(program, name=f"t{i}") for i in range(3)],
                fused=fused)
            results.append((int(out[0]), merged.as_dict(),
                            [c.as_dict() for c in per_thread]))
        assert results[0] == results[1]

    def test_faulting_block_matches_stepped_state(self):
        """A body faulting mid-block retires the completed prefix's
        counters: fault-time counter and architectural state are
        bit-identical to per-instruction stepping."""
        from repro.errors import SegmentationFault

        def build(base):
            asm = Assembler("faulty")
            asm.mov(regs.rax, Imm(base, 64))
            asm.mov(regs.rbx, 7)
            asm.mov(Mem(regs.rax, size=8), regs.rbx)       # ok
            asm.add(regs.rbx, 1)
            asm.mov(regs.rcx, Imm(0xDEAD0000, 64))
            asm.mov(Mem(regs.rcx, size=8), regs.rbx)       # faults
            asm.add(regs.rbx, 100)                          # never runs
            asm.ret()
            return asm.finish()

        states = []
        for fused in (False, True):
            mem = Memory()
            base, _ = mem.map_zeros(8)
            cpu = Cpu(mem, CpuConfig(timing=False))
            with pytest.raises(SegmentationFault):
                cpu.run(build(base), fused=fused)
            states.append((cpu.gpr[:], cpu.counters.as_dict(),
                           mem.read_int(base, 8)))
        assert states[0] == states[1]
        # five instructions retired before the fault
        assert states[0][1]["instructions"] == 5

    def test_vector_blocks_fuse(self):
        """A block containing SIMD bodies fuses and counts flops
        identically to stepping."""
        mem = Memory()
        data = np.arange(32, dtype=np.float32)
        out = np.zeros(16, dtype=np.float32)
        db = mem.map_array(data)
        ob = mem.map_array(out)

        def build():
            asm = Assembler("vec")
            asm.mov(regs.rax, Imm(db, 64))
            asm.vmovups(zmm(0), Mem(regs.rax, size=64))
            asm.vmovups(zmm(1), Mem(regs.rax, disp=64, size=64))
            asm.vfmadd231ps(zmm(2), zmm(0), zmm(1))
            asm.mov(regs.rbx, Imm(ob, 64))
            asm.vmovups(Mem(regs.rbx, size=64), zmm(2))
            asm.ret()
            return asm.finish()

        outputs, counter_dicts = [], []
        for fused in (False, True):
            out[:] = 0.0
            cpu = Cpu(mem, CpuConfig(timing=False))
            counters = cpu.run(build(), fused=fused)
            outputs.append(out.copy())
            counter_dicts.append(counters.as_dict())
        assert np.array_equal(outputs[0], outputs[1])
        assert counter_dicts[0] == counter_dicts[1]
        assert counter_dicts[0]["flop"] == 32
        assert counter_dicts[0]["simd_instructions"] == 4


class TestCompiledCacheKeying:
    """Regression: `Cpu._compiled` used to key on `id(program)`."""

    def test_cache_is_content_keyed(self):
        cpu = Cpu(Memory(), CpuConfig(timing=False))
        asm = Assembler("a")
        asm.mov(regs.rax, 1)
        asm.ret()
        p1 = asm.finish()
        semantics = cpu.semantics(p1)
        # an equal-content program compiled separately shares the entry
        asm2 = Assembler("b")  # name differs: excluded from identity
        asm2.mov(regs.rax, 1)
        asm2.ret()
        assert cpu.semantics(asm2.finish()) is semantics
        # different content gets its own entry
        asm3 = Assembler("a")
        asm3.mov(regs.rax, 2)
        asm3.ret()
        assert cpu.semantics(asm3.finish()) is not semantics

    def test_id_reuse_cannot_replay_stale_closures(self):
        """A collected program's id may be handed to a new program; the
        content-keyed cache must never replay the old closures."""
        cpu = Cpu(Memory(), CpuConfig(timing=False))

        def make(value):
            asm = Assembler("prog")
            asm.mov(regs.rax, value)
            asm.ret()
            return asm.finish()

        p1 = make(111)
        cpu.run(p1)
        assert cpu.get_gpr("rax") == 111
        stale_id = id(p1)
        del p1
        gc.collect()
        # allocate until one program lands on the reused id (CPython
        # usually reuses it immediately; bail out after a bounded hunt)
        for value in range(222, 322):
            p2 = make(value)
            if id(p2) == stale_id:
                break
        cpu.run(p2)
        # correct regardless of whether the id collided; when it did,
        # this is exactly the stale-replay scenario the fingerprint fixes
        assert cpu.get_gpr("rax") == value

    def test_fingerprint_is_cached_and_stable(self):
        program = loop_program(0x1000, 0x2000, 4)
        assert program.fingerprint() == program.fingerprint()
        clone = loop_program(0x1000, 0x2000, 4)
        assert clone.fingerprint() == program.fingerprint()
        other = loop_program(0x1000, 0x2000, 5)
        assert other.fingerprint() != program.fingerprint()
