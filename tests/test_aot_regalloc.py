"""Tests for both register allocators."""

import pytest

from repro.aot.builder import IRBuilder
from repro.aot.liveness import analyze
from repro.aot.regalloc import RegisterPools, allocate
from repro.errors import RegisterPressureError

SMALL_POOLS = RegisterPools(int_pool=("rax", "rbx", "rcx"), vec_pool=(0, 1))


def chain_function(length: int):
    """length simultaneously-live int values, then one use of each."""
    b = IRBuilder("chain")
    values = [b.const(i) for i in range(length)]
    total = b.const(0, "total")
    for value in values:
        b.iadd(total, value)
    b.ret()
    return b.finish()


@pytest.mark.parametrize("strategy", ["linear", "coloring"])
class TestBothAllocators:
    def test_fits_without_spills(self, strategy):
        func = chain_function(2)
        alloc = allocate(func, SMALL_POOLS, strategy=strategy)
        assert alloc.num_spill_slots == 0

    def test_no_interfering_values_share_register(self, strategy):
        func = chain_function(3)
        alloc = allocate(func, SMALL_POOLS, strategy=strategy)
        live = analyze(func)
        assigned = [
            (reg, phys) for reg, phys in alloc.assignment.items()
            if reg in live.intervals
        ]
        for i, (ra, pa) in enumerate(assigned):
            for rb, pb in assigned[i + 1:]:
                if pa == pb:
                    assert not live.intervals[ra].overlaps(live.intervals[rb]), (
                        f"{ra} and {rb} overlap but share {pa}"
                    )

    def test_spills_under_pressure(self, strategy):
        func = chain_function(8)  # 9 concurrent values, 3 registers
        alloc = allocate(func, SMALL_POOLS, strategy=strategy)
        assert alloc.num_spill_slots > 0
        # everything is either assigned or spilled
        for reg in analyze(func).intervals:
            assert reg in alloc.assignment or reg in alloc.spill_slots

    def test_spill_prefers_cold_values(self, strategy):
        # one value used heavily inside a deep loop, others cold
        b = IRBuilder("hotcold")
        hot = b.const(1, "hot")
        cold = [b.const(i, f"cold{i}") for i in range(4)]
        total = b.const(0, "total")
        b.br("head")
        b.start_block("head", depth=3)
        b.iadd(total, hot)
        b.cbr("ge", total, 1000, "exit", "head2")
        b.start_block("head2", depth=3)
        b.iadd(total, hot)
        b.br("head")
        b.start_block("exit")
        for value in cold:
            b.iadd(total, value)
        b.ret()
        func = b.finish()
        alloc = allocate(func, SMALL_POOLS, strategy=strategy)
        assert alloc.num_spill_slots > 0
        assert hot in alloc.assignment, "hot loop value must stay in a register"

    def test_precolored_pinned(self, strategy):
        b = IRBuilder("pin", 2, ("p0", "p1"))
        total = b.add(b.param(0), b.param(1))
        b.iadd(total, 1)
        b.ret()
        func = b.finish()
        pre = {func.params[0]: "rdi", func.params[1]: "rsi"}
        alloc = allocate(func, SMALL_POOLS, strategy=strategy, precolored=pre)
        assert alloc.assignment[func.params[0]] == "rdi"
        assert alloc.assignment[func.params[1]] == "rsi"

    def test_precolored_register_reused_after_death(self, strategy):
        # param dies immediately; its register should be available again
        b = IRBuilder("reuse", 1, ("p0",))
        copy = b.mov(b.param(0))
        values = [b.const(i) for i in range(3)]
        for value in values:
            b.iadd(copy, value)
        b.ret()
        func = b.finish()
        pre = {func.params[0]: "rdi"}
        pools = RegisterPools(int_pool=("rax", "rbx", "rcx"), vec_pool=(0,))
        alloc = allocate(func, pools, strategy=strategy, precolored=pre)
        # 4 concurrent values (copy + 3 consts) need 4 regs; with rdi
        # recycled there are exactly 4, so no spills are necessary
        assert alloc.num_spill_slots == 0

    def test_vec_class_allocated_independently(self, strategy):
        b = IRBuilder("vecs")
        acc = b.vzero(16)
        x = b.vzero(16)
        b.vfma(acc, x, x)
        n = b.const(1)
        b.iadd(n, 1)
        b.ret()
        func = b.finish()
        alloc = allocate(func, SMALL_POOLS, strategy=strategy)
        vec_assignments = {
            phys for reg, phys in alloc.assignment.items()
            if reg.type.reg_class == "vec"
        }
        assert vec_assignments <= {0, 1}


class TestErrors:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            allocate(chain_function(1), SMALL_POOLS, strategy="magic")

    def test_empty_pool_raises(self):
        pools = RegisterPools(int_pool=(), vec_pool=())
        with pytest.raises(RegisterPressureError):
            allocate(chain_function(2), pools, strategy="linear")
