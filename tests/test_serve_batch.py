"""Tests for the serving fast path: request coalescing and pooling."""

import threading

import numpy as np
import pytest

from repro.api import available_systems
from repro.errors import ShapeError
from repro.serve import SpmmService
from repro.sparse import spmm_reference
from tests.conftest import random_csr


def _concurrent(service, handle, xs):
    """Issue one multiply per operand from concurrent threads."""
    results = [None] * len(xs)
    errors = []
    barrier = threading.Barrier(len(xs))

    def run(index):
        barrier.wait()
        try:
            results[index] = service.multiply(handle, xs[index])
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)

    threads = [threading.Thread(target=run, args=(index,))
               for index in range(len(xs))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


class TestCoalescingConformance:
    def test_batched_bit_identical_to_sequential_every_system(self, rng):
        # the acceptance criterion: for every system in the registry,
        # coalesced execution returns bit-for-bit what per-request
        # execution returns
        matrix = random_csr(rng, 40, 36, density=0.25)
        xs = [rng.random((36, 8)).astype(np.float32) for _ in range(12)]
        for system in available_systems():
            split = "auto" if system == "jit" else "row"
            batched = SpmmService(threads=3, split=split, system=system,
                                  max_batch=4, flush_us=200)
            sequential = SpmmService(threads=3, split=split, system=system)
            bh = batched.register(matrix, "b")
            sh = sequential.register(matrix, "s")
            got = _concurrent(batched, bh, xs)
            for x, y in zip(xs, got):
                assert np.array_equal(y, sequential.multiply(sh, x)), system

    def test_batched_matches_reference(self, rng):
        service = SpmmService(threads=3, split="auto", max_batch=8)
        matrix = random_csr(rng, 50, 40)
        handle = service.register(matrix)
        xs = [rng.random((40, 6)).astype(np.float32) for _ in range(8)]
        for x, y in zip(xs, _concurrent(service, handle, xs)):
            assert np.allclose(y, spmm_reference(matrix, x), atol=1e-4)

    def test_single_threaded_traffic_is_batches_of_one(self, rng):
        service = SpmmService(threads=2, split="row", max_batch=8)
        matrix = random_csr(rng, 30, 30)
        handle = service.register(matrix)
        x = rng.random((30, 4)).astype(np.float32)
        for _ in range(5):
            y = service.multiply(handle, x)
        assert np.allclose(y, spmm_reference(matrix, x), atol=1e-4)
        stats = service.handle_stats(handle)
        assert stats.batches == {1: 5}
        assert stats.requests == 5

    def test_mixed_widths_never_share_a_batch(self, rng):
        # coalescing is keyed per (handle, d): interleaved widths work
        # and each width's histogram stands alone
        service = SpmmService(threads=2, split="row", max_batch=8)
        matrix = random_csr(rng, 30, 30)
        handle = service.register(matrix)
        x4 = rng.random((30, 4)).astype(np.float32)
        x8 = rng.random((30, 8)).astype(np.float32)
        xs = [x4, x8] * 6
        got = _concurrent(service, handle, xs)
        for x, y in zip(xs, got):
            assert y.shape == (30, x.shape[1])
            assert np.allclose(y, spmm_reference(matrix, x), atol=1e-4)


class TestBatchMechanics:
    def test_max_batch_caps_batch_size(self, rng):
        service = SpmmService(threads=2, split="row", max_batch=3,
                              flush_us=500)
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        xs = [rng.random((25, 4)).astype(np.float32) for _ in range(9)]
        _concurrent(service, handle, xs)
        stats = service.handle_stats(handle)
        assert stats.requests == 9
        assert sum(size * count for size, count in stats.batches.items()) == 9
        assert max(stats.batches) <= 3

    def test_histogram_accounts_every_request(self, rng):
        service = SpmmService(threads=2, split="row", max_batch=16,
                              flush_us=300)
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        xs = [rng.random((25, 4)).astype(np.float32) for _ in range(10)]
        _concurrent(service, handle, xs)
        stats = service.handle_stats(handle)
        served = sum(size * count for size, count in stats.batches.items())
        assert served == stats.requests == 10
        assert service.stats.batch_sizes == stats.batches
        assert service.stats.mean_batch_size() == pytest.approx(
            10 / sum(stats.batches.values()))

    def test_execution_failure_reaches_every_member(self, rng, monkeypatch):
        service = SpmmService(threads=2, split="row", max_batch=8,
                              flush_us=300)
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        xs = [rng.random((25, 4)).astype(np.float32) for _ in range(6)]
        service.multiply(handle, xs[0])     # codegen before the fault

        def boom(*args, **kwargs):
            raise RuntimeError("injected batch failure")

        import repro.serve.service as service_module
        monkeypatch.setattr(service_module, "multiply_partitioned", boom)
        with pytest.raises(RuntimeError, match="injected"):
            _concurrent(service, handle, xs)
        monkeypatch.undo()
        # the queue recovered: leadership was handed back and a later
        # request is served normally
        y = service.multiply(handle, xs[0])
        assert np.allclose(y, spmm_reference(matrix, xs[0]), atol=1e-4)

    def test_gather_buffers_are_pooled(self, rng):
        service = SpmmService(threads=2, split="row", max_batch=8,
                              flush_us=300)
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        xs = [rng.random((25, 4)).astype(np.float32) for _ in range(6)]
        for _ in range(3):
            _concurrent(service, handle, xs)
        stats = service.pool.stats()
        if stats.requests:          # at least one multi-request batch ran
            assert stats.releases == stats.requests
            if stats.requests > 1:
                assert stats.reuses >= 1

    def test_batched_results_are_views_of_one_product(self, rng):
        # the zero-copy contract: members of a real batch share a base
        service = SpmmService(threads=2, split="row", max_batch=8,
                              flush_us=500)
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        xs = [rng.random((25, 4)).astype(np.float32) for _ in range(6)]
        results = _concurrent(service, handle, xs)
        sizes = service.handle_stats(handle).batches
        if any(size > 1 for size in sizes):
            assert any(y.base is not None for y in results)

    def test_invalid_operand_rejected_before_enqueue(self, rng):
        service = SpmmService(threads=2, split="row", max_batch=8)
        handle = service.register(random_csr(rng, 20, 20))
        with pytest.raises(ShapeError):
            service.multiply(handle, rng.random((21, 4)).astype(np.float32))
        with pytest.raises(ShapeError):
            service.multiply(handle, np.zeros((20, 0), dtype=np.float32))

    def test_config_validates_knobs(self):
        with pytest.raises(ShapeError):
            SpmmService(threads=2, split="row", max_batch=0)
        with pytest.raises(ShapeError):
            SpmmService(threads=2, split="row", flush_us=-1.0)
        with pytest.raises(ShapeError):
            SpmmService(threads=2, split="row", stripes=0)

    def test_profile_unaffected_by_coalescing(self, rng):
        service = SpmmService(threads=2, split="row", max_batch=8)
        matrix = random_csr(rng, 25, 25, density=0.2)
        handle = service.register(matrix)
        x = rng.random((25, 4)).astype(np.float32)
        result = service.profile(handle, x)
        assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-3)
        assert service.handle_stats(handle).batches == {}


class TestBatchErrorIsolation:
    def test_each_member_raises_its_own_exception_instance(self, rng,
                                                           monkeypatch):
        service = SpmmService(threads=2, split="row", max_batch=8,
                              flush_us=300)
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        xs = [rng.random((25, 4)).astype(np.float32) for _ in range(5)]
        service.multiply(handle, xs[0])

        def boom(*args, **kwargs):
            raise RuntimeError("injected batch failure")

        import repro.serve.service as service_module
        monkeypatch.setattr(service_module, "multiply_partitioned", boom)
        caught = []
        barrier = threading.Barrier(len(xs))

        def run(index):
            barrier.wait()
            try:
                service.multiply(handle, xs[index])
            except RuntimeError as error:
                caught.append(error)

        threads = [threading.Thread(target=run, args=(index,))
                   for index in range(len(xs))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(caught) == len(xs)
        assert all("injected" in str(error) for error in caught)
        # members of one batch must not share the raised instance (a
        # shared object would interleave tracebacks across threads);
        # chained clones point back to one original via __cause__
        assert len(set(map(id, caught))) == len(caught)
        causes = {id(error.__cause__) for error in caught
                  if error.__cause__ is not None}
        assert len(causes) <= 2     # at most one original per batch
