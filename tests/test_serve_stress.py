"""Race stress tests: concurrent register/unregister/multiply traffic
against the sharded cache under byte pressure.

The invariant under test: eviction (kernel-cache byte pressure or
workspace-LRU pressure) racing live multiply traffic must never hand a
request a discarded kernel's wrong result or corrupt the service's
bookkeeping — every response stays bit-correct, and the refcounted
kernel-identity state drains to empty once every handle is gone.
"""

import threading

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.serve import ShardedKernelCache, SpmmService
from repro.sparse import spmm_reference
from tests.conftest import random_csr


@pytest.mark.parametrize("max_batch", [1, 4])
def test_concurrent_register_unregister_multiply(rng, max_batch):
    # a sharded cache so small that every width insert evicts another
    # identity: multiplies race evictions constantly
    service = SpmmService(
        threads=2, split="row", max_batch=max_batch, flush_us=100,
        cache=ShardedKernelCache(budget_bytes=512, shards=2),
    )
    matrices = [random_csr(rng, 20 + 4 * index, 24, density=0.3,
                           name=f"m{index}")
                for index in range(4)]
    expected = {}
    operands = {}
    for index, matrix in enumerate(matrices):
        x = rng.random((24, 4 + 4 * (index % 2))).astype(np.float32)
        operands[index] = x
        expected[index] = spmm_reference(matrix, x)
    errors = []
    workers = 8
    rounds = 12
    barrier = threading.Barrier(workers)

    def worker(seed):
        local = np.random.default_rng(seed)
        barrier.wait()
        for _ in range(rounds):
            index = int(local.integers(len(matrices)))
            matrix = matrices[index]
            if local.random() < 0.25:
                # churn: a private registration lifecycle mid-traffic
                handle = service.register(matrix, f"churn{seed}")
                try:
                    y = service.multiply(handle, operands[index])
                    if not np.array_equal(y, expected[index]):
                        errors.append(("churn mismatch", index))
                finally:
                    service.unregister(handle)
            else:
                handle = service.register(matrix)
                y = service.multiply(handle, operands[index])
                if not np.array_equal(y, expected[index]):
                    errors.append(("mismatch", index))
                service.unregister(handle)

    threads = [threading.Thread(target=worker, args=(seed,))
               for seed in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # every handle was unregistered: the refcounted identity state and
    # the workspace stripes must have drained completely (the cache was
    # supplied externally, so its entries are deliberately left alone)
    assert not service._workspaces
    assert service._key_refs == {}
    assert service._keylocks == {}


def test_eviction_under_byte_pressure_mid_multiply(rng):
    # alternate widths whose kernels cannot coexist in the budget while
    # concurrent threads multiply both: a request that resolved a
    # kernel just before its eviction must still serve the bit-correct
    # product (the evicted object stays valid for in-flight holders)
    service = SpmmService(
        threads=2, split="row",
        cache=ShardedKernelCache(budget_bytes=160, shards=2),
    )
    matrix = random_csr(rng, 30, 30, density=0.3)
    handle = service.register(matrix)
    widths = (4, 8, 16, 32)
    operands = {d: rng.random((30, d)).astype(np.float32) for d in widths}
    expected = {d: spmm_reference(matrix, operands[d]) for d in widths}
    errors = []
    barrier = threading.Barrier(len(widths))

    def hammer(d):
        barrier.wait()
        for _ in range(10):
            if not np.array_equal(service.multiply(handle, operands[d]),
                                  expected[d]):
                errors.append(d)

    threads = [threading.Thread(target=hammer, args=(d,)) for d in widths]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    stats = service.cache.stats()
    assert stats.evictions > 0          # the pressure was real
    # identity bookkeeping survived the churn: one ref per live width
    assert sorted(service._key_refs.values()) == [1] * len(widths)


def test_workspace_eviction_races_multiply(rng):
    # a workspace cap of 1 with several widths in flight: every request
    # re-creates the evicted workspace yet serves correctly
    service = SpmmService(threads=2, split="row", max_workspaces=1)
    matrix = random_csr(rng, 25, 25, density=0.3)
    handle = service.register(matrix)
    widths = (2, 4, 8)
    operands = {d: rng.random((25, d)).astype(np.float32) for d in widths}
    expected = {d: spmm_reference(matrix, operands[d]) for d in widths}
    errors = []
    barrier = threading.Barrier(len(widths))

    def hammer(d):
        barrier.wait()
        for _ in range(8):
            if not np.array_equal(service.multiply(handle, operands[d]),
                                  expected[d]):
                errors.append(d)

    threads = [threading.Thread(target=hammer, args=(d,)) for d in widths]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert service._workspace_evictions > 0
    # kernels survive workspace eviction: regeneration only ever
    # happened after *cache* evictions, of which there were none
    assert service.cache.stats().evictions == 0


def test_unregister_mid_flight_requests_complete(rng):
    service = SpmmService(threads=2, split="row")
    matrix = random_csr(rng, 30, 30, density=0.3)
    x = rng.random((30, 8)).astype(np.float32)
    expected = spmm_reference(matrix, x)
    stop = threading.Event()
    errors = []

    def traffic():
        while not stop.is_set():
            handle = service.register(matrix)
            try:
                y = service.multiply(handle, x)
                if not np.array_equal(y, expected):
                    errors.append("mismatch")
            except ShapeError:
                pass                    # raced another thread's sweep
            try:
                service.unregister(handle)
            except ShapeError:
                pass
    threads = [threading.Thread(target=traffic) for _ in range(6)]
    for thread in threads:
        thread.start()
    import time
    time.sleep(0.4)
    stop.set()
    for thread in threads:
        thread.join()
    assert not errors


def test_report_is_consistent_during_multiply_storm(rng):
    """Satellite regression: report()/snapshot() during live traffic.

    Every line of a report must describe one instant: per-handle stats
    are copied under their stripe locks, so a reader can never observe
    a request counted in ``requests`` whose latency or exec time has
    not landed yet.  The invariant checked here — cold+warm latency
    counts always equal the request count, and exec time is present as
    soon as requests are — held only probabilistically before the
    snapshot rework (field-by-field reads of live mutable stats).
    """
    service = SpmmService(threads=2, split="row", max_batch=4,
                          flush_us=50)
    matrix = random_csr(rng, 30, 30, name="storm")
    handle = service.register(matrix)
    xs = [rng.random((30, 4)).astype(np.float32) for _ in range(4)]
    service.multiply(handle, xs[0])
    stop = threading.Event()
    problems = []

    def traffic(index):
        while not stop.is_set():
            service.multiply(handle, xs[index % len(xs)])

    def reader():
        while not stop.is_set():
            snapshot = service.snapshot()
            stats = snapshot.stats.handles[handle.handle_id]
            observed = stats.cold.count + stats.warm.count
            if observed != stats.requests:
                problems.append(
                    f"torn snapshot: {stats.requests} requests but "
                    f"{observed} latency observations")
            if stats.requests and stats.exec_seconds <= 0.0:
                problems.append("requests counted with no exec time")
            # the rendered report and the metric samples come from the
            # same snapshot, so they can never disagree
            rendered = snapshot.render()
            if f"{stats.requests} requests" not in rendered.splitlines()[0]:
                problems.append("render out of sync with snapshot")
            service.report()            # exercises the full live path

    workers = [threading.Thread(target=traffic, args=(index,))
               for index in range(4)]
    readers = [threading.Thread(target=reader) for _ in range(2)]
    for thread in workers + readers:
        thread.start()
    import time
    time.sleep(0.5)
    stop.set()
    for thread in workers + readers:
        thread.join()
    assert not problems, problems[:5]


def test_promotion_races_unregister_churn(rng):
    # handles unregister while their background promotions are still in
    # flight: every promotion must settle (promoted or stale, never
    # wedged), results stay bit-correct, and the identity state drains
    service = SpmmService(threads=2, split="row", tier_mode="lazy",
                          promote_after=1, promotion_workers=2)
    matrices = [random_csr(rng, 20 + 3 * index, 24, density=0.3,
                           name=f"p{index}")
                for index in range(4)]
    operands = {}
    expected = {}
    for index, matrix in enumerate(matrices):
        x = rng.random((24, 8)).astype(np.float32)
        operands[index] = x
        expected[index] = spmm_reference(matrix, x)
    errors = []
    workers = 6
    rounds = 10
    barrier = threading.Barrier(workers)

    def worker(seed):
        local = np.random.default_rng(seed)
        barrier.wait()
        for _ in range(rounds):
            index = int(local.integers(len(matrices)))
            handle = service.register(matrices[index], f"w{seed}")
            # promote_after=1: the first request schedules promotion,
            # and unregister races the background job directly
            for _ in range(int(local.integers(1, 4))):
                y = service.multiply(handle, operands[index])
                if not np.array_equal(y, expected[index]):
                    errors.append(("mismatch", index))
            service.unregister(handle)

    threads = [threading.Thread(target=worker, args=(seed,))
               for seed in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert service.drain_promotions(30.0)
    stats = service.tier_stats
    settled = sum(stats.outcome(name)
                  for name in ("promoted", "failed", "stale"))
    assert stats.pending == 0 and settled > 0
    assert stats.outcome("failed") == 0
    # every handle is gone: identity refcounts and keylocks drained,
    # including those of promotions that landed or went stale
    assert not service._workspaces
    assert service._key_refs == {}
    assert service._keylocks == {}
    service.close()


def test_promotion_races_eviction_under_byte_pressure(rng):
    # a cache too small for every promoted kernel: promotions land,
    # their kernels get evicted by other promotions, and every request
    # still serves bit-correct results from whatever tier it captured
    service = SpmmService(threads=2, split="row", tier_mode="eager",
                          promotion_workers=2,
                          cache=ShardedKernelCache(budget_bytes=512,
                                                   shards=2))
    matrices = [random_csr(rng, 18 + 5 * index, 22, density=0.3,
                           name=f"e{index}")
                for index in range(5)]
    handles = [service.register(matrix) for matrix in matrices]
    operands = [rng.random((22, 8)).astype(np.float32)
                for _ in matrices]
    expected = [spmm_reference(matrix, x)
                for matrix, x in zip(matrices, operands)]
    errors = []
    barrier = threading.Barrier(len(handles))

    def hammer(index):
        barrier.wait()
        for _ in range(12):
            y = service.multiply(handles[index], operands[index])
            if not np.array_equal(y, expected[index]):
                errors.append(index)

    threads = [threading.Thread(target=hammer, args=(index,))
               for index in range(len(handles))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert service.drain_promotions(30.0)
    assert service.cache.stats().evictions > 0      # pressure was real
    for handle in handles:
        service.unregister(handle)
    assert service._key_refs == {}
    assert service._keylocks == {}
    service.close()


def test_promotion_lands_mid_coalesced_batch(rng):
    # coalescing holds batches open for a long flush window while the
    # promotion executor hot-swaps the plan: each batch executes one
    # captured plan (never split across tiers) and stays bit-exact
    service = SpmmService(threads=2, split="row", tier_mode="lazy",
                          promote_after=12, max_batch=8, flush_us=2000)
    matrix = random_csr(rng, 30, 30, density=0.3, name="midbatch")
    handle = service.register(matrix)
    operands = [rng.random((30, 8)).astype(np.float32) for _ in range(4)]
    expected = [spmm_reference(matrix, x) for x in operands]
    # below the threshold: guaranteed template-tier traffic before the
    # concurrent storm crosses it mid-batch
    for _ in range(5):
        assert np.array_equal(service.multiply(handle, operands[0]),
                              expected[0])
    assert service.handle_stats(handle).tiers == {"template": 5}
    errors = []
    stop = threading.Event()

    def traffic(index):
        while not stop.is_set():
            y = service.multiply(handle, operands[index])
            if not np.array_equal(y, expected[index]):
                errors.append(index)

    threads = [threading.Thread(target=traffic, args=(index,))
               for index in range(len(operands))]
    for thread in threads:
        thread.start()
    import time
    deadline = time.monotonic() + 10.0
    while (service.tier_state(handle, 8) != "promoted"
           and time.monotonic() < deadline):
        time.sleep(0.01)
    time.sleep(0.2)                 # promoted tier serves real batches
    stop.set()
    for thread in threads:
        thread.join()
    assert not errors
    assert service.tier_state(handle, 8) == "promoted"
    stats = service.handle_stats(handle)
    assert stats.tiers.get("template", 0) > 0
    assert stats.tiers.get("promoted", 0) > 0
    # batches really coalesced around the swap
    assert any(size > 1 for size in stats.batches)
    service.unregister(handle)
    assert service._key_refs == {}
    assert service._keylocks == {}
    service.close()
