"""Tests for the register model."""

import pytest

from repro.isa.registers import GPR_NAMES, gpr, regs, xmm, ymm, zmm


class TestGpr:
    def test_all_sixteen_by_code(self):
        for code in range(16):
            reg = gpr(code)
            assert reg.code == code
            assert reg.width == 64

    def test_lookup_by_name(self):
        assert gpr("rdi").code == 7
        assert gpr("r10").code == 10

    def test_names_match_hardware_encoding_order(self):
        # rax=0 ... rdi=7, r8=8 ... r15=15 (Intel SDM Vol 2, Table 2-2)
        assert GPR_NAMES[0] == "rax"
        assert GPR_NAMES[4] == "rsp"
        assert GPR_NAMES[5] == "rbp"
        assert GPR_NAMES[15] == "r15"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            gpr("r16")

    def test_out_of_range_code_raises(self):
        with pytest.raises(KeyError):
            gpr(16)

    def test_extended_flag(self):
        assert not gpr("rax").is_extended
        assert gpr("r8").is_extended

    def test_interned(self):
        assert gpr(3) is gpr(3)


class TestVector:
    def test_widths_and_lanes(self):
        assert xmm(0).width == 128 and xmm(0).lanes_f32 == 4
        assert ymm(0).width == 256 and ymm(0).lanes_f32 == 8
        assert zmm(0).width == 512 and zmm(0).lanes_f32 == 16

    def test_thirty_two_registers(self):
        assert zmm(31).name == "zmm31"
        with pytest.raises(KeyError):
            zmm(32)

    def test_aliasing_shares_code(self):
        # paper §IV-D.1: xmm/ymm alias the low bits of the same zmm
        assert xmm(5).code == ymm(5).code == zmm(5).code

    def test_with_width(self):
        assert zmm(7).with_width(128) is xmm(7)

    def test_is_vector(self):
        assert zmm(0).is_vector
        assert not gpr(0).is_vector


class TestNamespace:
    def test_attribute_access(self):
        assert regs.rdi is gpr("rdi")
        assert regs.zmm31 is zmm(31)
        assert regs.xmm4 is xmm(4)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            regs.bogus
