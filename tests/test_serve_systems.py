"""Tests for system-agnostic serving and the workspace LRU cap."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.serve import SpmmService
from repro.sparse import spmm_reference
from tests.conftest import random_csr


class TestServeTemplateSystems:
    @pytest.mark.parametrize("system", ["aot:icc-avx512", "aot:gcc", "mkl"])
    def test_multiply_matches_reference(self, rng, system):
        service = SpmmService(threads=3, split="row", system=system)
        matrix = random_csr(rng, 40, 30)
        x = rng.random((30, 8)).astype(np.float32)
        handle = service.register(matrix)
        assert np.allclose(service.multiply(handle, x),
                           spmm_reference(matrix, x), atol=1e-4)

    def test_aot_trace_amortizes_like_jit(self, rng):
        # the acceptance trace: two requests on an AOT system — the
        # second is a cache hit and the amortized overhead falls
        service = SpmmService(threads=2, split="row",
                              system="aot:icc-avx512", timing=False)
        matrix = random_csr(rng, 30, 30, density=0.2)
        x = rng.random((30, 8)).astype(np.float32)
        handle = service.register(matrix)
        cold = service.profile(handle, x)
        overhead_after_1 = service.handle_stats(handle).codegen_overhead()
        warm = service.profile(handle, x)
        overhead_after_2 = service.handle_stats(handle).codegen_overhead()
        assert not cold.cache_hit and warm.cache_hit
        assert cold.codegen_seconds > 0 and warm.codegen_seconds == 0.0
        assert warm.program is cold.program
        assert 0 < overhead_after_2 < overhead_after_1
        assert service.handle_stats(handle).codegen_runs == 1
        assert np.allclose(warm.y, spmm_reference(matrix, x), atol=1e-4)
        assert warm.system == "aot-icc-avx512-serve"

    def test_template_kernel_shared_across_handles_and_widths(self, rng):
        # address-free kernels have one identity: a second handle and a
        # second width both reuse it (unlike JIT, where each shape is a
        # new kernel)
        service = SpmmService(threads=2, split="row", system="mkl")
        a = service.register(random_csr(rng, 20, 20, name="a"))
        b = service.register(random_csr(rng, 35, 25, name="b"))
        service.multiply(a, rng.random((20, 8)).astype(np.float32))
        service.multiply(a, rng.random((20, 16)).astype(np.float32))
        service.multiply(b, rng.random((25, 8)).astype(np.float32))
        assert len(service.cache) == 1
        assert service.stats.codegen_runs == 1

    def test_profile_sees_fresh_x(self, rng):
        service = SpmmService(threads=2, split="row", system="mkl")
        matrix = random_csr(rng, 25, 25, density=0.2)
        handle = service.register(matrix)
        x1 = rng.random((25, 8)).astype(np.float32)
        x2 = rng.random((25, 8)).astype(np.float32)
        y1 = service.profile(handle, x1).y
        y2 = service.profile(handle, x2).y
        assert np.allclose(y1, spmm_reference(matrix, x1), atol=1e-3)
        assert np.allclose(y2, spmm_reference(matrix, x2), atol=1e-3)

    def test_auto_split_rejected_for_non_jit(self):
        with pytest.raises(ShapeError, match="auto"):
            SpmmService(threads=2, system="mkl")  # default split="auto"
        with pytest.raises(ShapeError, match="auto"):
            SpmmService(threads=2, split="auto", system="aot:gcc")


class TestWorkspaceLru:
    def test_cap_evicts_least_recently_used(self, rng):
        service = SpmmService(threads=2, split="row", max_workspaces=2)
        matrix = random_csr(rng, 30, 30)
        handle = service.register(matrix)
        for d in (4, 8, 16):
            service.multiply(handle, rng.random((30, d)).astype(np.float32))
        assert len(service._workspaces) == 2
        assert service._workspace_evictions == 1
        # d=4 was evicted; d=8 and d=16 survive
        assert set(service._workspaces) == {(handle.handle_id, 8),
                                            (handle.handle_id, 16)}

    def test_eviction_keeps_kernels_warm(self, rng):
        # a re-requested evicted shape re-maps operands but must not
        # re-generate code: the kernel cache is not coupled to the
        # workspace LRU
        service = SpmmService(threads=2, split="row", max_workspaces=1)
        matrix = random_csr(rng, 30, 30)
        handle = service.register(matrix)
        x8 = rng.random((30, 8)).astype(np.float32)
        x16 = rng.random((30, 16)).astype(np.float32)
        service.multiply(handle, x8)
        service.multiply(handle, x16)          # evicts the d=8 workspace
        y = service.multiply(handle, x8)       # recreates it
        assert np.allclose(y, spmm_reference(matrix, x8), atol=1e-4)
        assert service._workspace_evictions == 2
        assert service.handle_stats(handle).codegen_runs == 2  # d=8, d=16
        assert service.handle_stats(handle).cold.count == 3    # remapping

    def test_touch_refreshes_recency(self, rng):
        service = SpmmService(threads=2, split="row", max_workspaces=2)
        matrix = random_csr(rng, 20, 20)
        handle = service.register(matrix)
        x4 = rng.random((20, 4)).astype(np.float32)
        service.multiply(handle, x4)
        service.multiply(handle, rng.random((20, 8)).astype(np.float32))
        service.multiply(handle, x4)           # re-touch d=4
        service.multiply(handle, rng.random((20, 16)).astype(np.float32))
        assert set(service._workspaces) == {(handle.handle_id, 4),
                                            (handle.handle_id, 16)}

    def test_report_exposes_cap_and_evictions(self, rng):
        service = SpmmService(threads=2, split="row", max_workspaces=1)
        matrix = random_csr(rng, 20, 20)
        handle = service.register(matrix)
        service.multiply(handle, rng.random((20, 4)).astype(np.float32))
        service.multiply(handle, rng.random((20, 8)).astype(np.float32))
        report = service.report()
        assert "workspaces: 1 live (cap 1), 1 evicted" in report

    def test_eviction_drops_stale_keylocks(self, rng):
        # per-identity codegen locks must not outlive every workspace
        # carrying the identity, or shape churn grows them unboundedly
        service = SpmmService(threads=2, split="row", max_workspaces=1)
        matrix = random_csr(rng, 30, 30)
        handle = service.register(matrix)
        for d in (2, 4, 8, 16, 32):
            service.multiply(handle, rng.random((30, d)).astype(np.float32))
        assert len(service._keylocks) == 1  # only the live workspace's

    def test_invalid_cap_rejected(self):
        with pytest.raises(ShapeError):
            SpmmService(threads=2, max_workspaces=0)

    def test_unbounded_cap(self, rng):
        service = SpmmService(threads=2, split="row", max_workspaces=None)
        matrix = random_csr(rng, 20, 20)
        handle = service.register(matrix)
        for d in (2, 4, 8, 16):
            service.multiply(handle, rng.random((20, d)).astype(np.float32))
        assert len(service._workspaces) == 4
        assert "cap unbounded" in service.report()


class TestCrossStripeCap:
    def test_cap_enforced_across_stripes(self, rng):
        # 8 handles land on 8 distinct stripes; the service-wide cap
        # must hold anyway (eviction reaches into idle stripes)
        service = SpmmService(threads=2, split="row", max_workspaces=4)
        x_by_handle = {}
        for index in range(8):
            matrix = random_csr(rng, 20 + index, 20)
            handle = service.register(matrix)
            x_by_handle[handle] = rng.random((20, 4)).astype(np.float32)
            service.multiply(handle, x_by_handle[handle])
        assert len(service._workspaces) == 4
        assert service._workspace_evictions == 4
        # the survivors are the four most recently used
        live_handles = {key[0] for key in service._workspaces}
        assert live_handles == {4, 5, 6, 7}

    def test_eviction_order_is_global_lru(self, rng):
        service = SpmmService(threads=2, split="row", max_workspaces=2)
        a = service.register(random_csr(rng, 20, 20))
        b = service.register(random_csr(rng, 21, 20))
        c = service.register(random_csr(rng, 22, 20))
        xa = rng.random((20, 4)).astype(np.float32)
        service.multiply(a, xa)
        service.multiply(b, rng.random((20, 4)).astype(np.float32))
        service.multiply(a, xa)                 # re-touch a: b is now LRU
        service.multiply(c, rng.random((20, 4)).astype(np.float32))
        live_handles = {key[0] for key in service._workspaces}
        assert live_handles == {a.handle_id, c.handle_id}
