"""Tests for liveness analysis and interval construction."""

from repro.aot.builder import IRBuilder
from repro.aot.liveness import analyze


def make_loop():
    b = IRBuilder("f", 1, ("n",))
    i = b.const(0, "i")
    acc = b.const(0, "acc")
    dead = b.const(99, "dead")  # defined, never used
    b.br("head")
    b.start_block("head", depth=1)
    b.cbr("ge", i, b.param(0), "exit", "body")
    b.start_block("body", depth=2)
    b.iadd(acc, i)
    b.iadd(i, 1)
    b.br("head")
    b.start_block("exit")
    b.ret()
    return b.finish(), i, acc, dead


class TestBlockSets:
    def test_loop_variable_live_into_header(self):
        func, i, acc, dead = make_loop()
        live = analyze(func)
        assert i in live.live_in["head"]
        assert acc in live.live_in["body"]

    def test_dead_value_not_live_anywhere_after_def(self):
        func, _, _, dead = make_loop()
        live = analyze(func)
        assert dead not in live.live_in["head"]
        assert dead not in live.live_out["entry"]

    def test_param_live_into_loop(self):
        func, *_ = make_loop()
        live = analyze(func)
        n = func.params[0]
        assert n in live.live_in["head"]


class TestIntervals:
    def test_loop_carried_interval_spans_loop(self):
        func, i, acc, _ = make_loop()
        live = analyze(func)
        interval = live.intervals[i]
        # must cover every block of the loop (through "body")
        body_positions = [
            pos for pos, label in _positions(func) if label == "body"
        ]
        assert interval.start <= body_positions[0]
        assert interval.end > body_positions[-1]

    def test_dead_value_interval_is_point(self):
        func, _, _, dead = make_loop()
        live = analyze(func)
        interval = live.intervals[dead]
        assert interval.end - interval.start == 1

    def test_use_counts_weighted_by_depth(self):
        func, i, acc, dead = make_loop()
        live = analyze(func)
        # i is used in head (depth 1) and twice in body (depth 2):
        # weight 10 + 2*100
        assert live.intervals[i].use_count == 10 + 200
        assert live.intervals[dead].use_count == 0

    def test_intervals_by_start_sorted(self):
        func, *_ = make_loop()
        live = analyze(func)
        starts = [iv.start for iv in live.intervals_by_start()]
        assert starts == sorted(starts)

    def test_overlap_predicate(self):
        func, i, acc, dead = make_loop()
        live = analyze(func)
        assert live.intervals[i].overlaps(live.intervals[acc])
        assert not live.intervals[dead].overlaps(
            live.intervals[dead].__class__(dead, 10_000, 10_001))


def _positions(func):
    position = 0
    out = []
    for block in func.blocks:
        for _ in block.instrs:
            out.append((position, block.label))
            position += 1
    return out
