"""Cross-system conformance: every registered system, one truth.

One parametrized test asserts that *every* registered system produces
``Y`` bit-identical to :func:`repro.sparse.spmm_reference` on two
dataset twins, driven through ``repro.run`` — so any future
registration is conformance-checked for free (the parametrization reads
the live registry).

The only sanctioned relaxation: systems whose kernels accumulate
non-zeros in a different order than the reference (the icc-avx512
personality gather-vectorizes *across* the non-zero list) cannot be
bitwise-equal in float32; they get a tight tolerance instead.
"""

import numpy as np
import pytest

import repro
from repro.datasets import load

#: systems whose accumulation order differs from the row-sequential
#: reference — float32 rounding makes bitwise equality impossible
REORDERED_ACCUMULATION = {"aot:icc-avx512", "icc-avx512"}

#: aliases resolve to the same instances as their canonical names; test
#: each instance once under its canonical spelling
_CANONICAL = [name for name in repro.available_systems()
              if repro.get_system(name).name == name]

_TWINS = ("uk-2005", "GAP-urand")


@pytest.fixture(scope="module")
def twins():
    return {name: load(name, scale=2.0 ** -21, seed=7) for name in _TWINS}


@pytest.mark.parametrize("dataset", _TWINS)
@pytest.mark.parametrize("system", _CANONICAL)
def test_every_registered_system_matches_reference(twins, system, dataset):
    matrix = twins[dataset]
    rng = np.random.default_rng(99)
    x = rng.random((matrix.ncols, 16), dtype=np.float32)
    expected = repro.spmm_reference(matrix, x)
    result = repro.run(matrix, x, system=system, threads=3, timing=False)
    if system in REORDERED_ACCUMULATION:
        assert np.allclose(result.y, expected, atol=1e-4), system
    else:
        assert np.array_equal(result.y, expected), (
            f"{system} is not bit-identical to spmm_reference")


def test_canonical_set_covers_the_paper_matrix():
    # the evaluation's systems must all be conformance-checked above
    for required in ("jit", "mkl", "aot:gcc", "aot:clang", "aot:icc",
                     "aot:icc-avx512"):
        assert required in _CANONICAL
