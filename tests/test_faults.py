"""Tests for :mod:`repro.faults`: plans, determinism, activation."""

import json

import pytest

from repro import faults
from repro.errors import FaultConfigError
from repro.faults import FaultInjector, FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


class TestFaultRule:
    def test_defaults_fire_once_deterministically(self):
        rule = FaultRule("worker.crash")
        assert rule.probability == 1.0
        assert rule.max_fires == 1
        assert rule.after == 0

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown fault site"):
            FaultRule("worker.explode")

    @pytest.mark.parametrize("kwargs", [
        {"probability": -0.1}, {"probability": 1.5},
        {"max_fires": 0}, {"max_fires": -2},
        {"after": -1},
        {"hang_seconds": 0.0},
        {"delay_ms": -5.0},
    ])
    def test_out_of_range_fields_rejected(self, kwargs):
        with pytest.raises(FaultConfigError):
            FaultRule("conn.drop", **kwargs)

    def test_dict_round_trip(self):
        rule = FaultRule("reply.delay", probability=0.5, max_fires=None,
                         after=3, delay_ms=7.5)
        assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_unknown_dict_fields_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown fault-rule"):
            FaultRule.from_dict({"site": "conn.drop", "severity": 9})

    def test_missing_site_rejected(self):
        with pytest.raises(FaultConfigError, match="missing its site"):
            FaultRule.from_dict({"probability": 1.0})


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=42, rules=(
            FaultRule("worker.hang", hang_seconds=1.0),
            FaultRule("conn.drop", probability=0.25, max_fires=None)))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_is_plain_data(self):
        plan = FaultPlan(seed=7, rules=(FaultRule("shm.exhaust"),))
        data = json.loads(plan.to_json())
        assert data["seed"] == 7
        assert data["rules"][0]["site"] == "shm.exhaust"

    def test_bad_json_rejected(self):
        with pytest.raises(FaultConfigError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_non_rule_entries_rejected(self):
        with pytest.raises(FaultConfigError, match="FaultRule"):
            FaultPlan(rules=("worker.crash",))

    def test_unknown_plan_fields_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown fault-plan"):
            FaultPlan.from_dict({"seed": 1, "chaos": True})

    def test_describe_names_every_rule(self):
        plan = FaultPlan(seed=3, rules=(FaultRule("codegen.raise"),))
        text = plan.describe()
        assert "seed 3" in text and "codegen.raise" in text


class TestFaultInjector:
    def test_fires_exactly_max_fires_times(self):
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule("worker.crash", max_fires=2),)))
        hits = [injector.check("worker.crash") for _ in range(5)]
        assert [h is not None for h in hits] == [True, True] + [False] * 3
        assert injector.fires() == {"worker.crash": 2}
        assert injector.exhausted()

    def test_after_skips_early_evaluations(self):
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule("conn.drop", after=2, max_fires=1),)))
        hits = [injector.check("conn.drop") is not None for _ in range(4)]
        assert hits == [False, False, True, False]

    def test_unlisted_site_is_free(self):
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule("worker.hang"),)))
        assert injector.check("conn.drop") is None
        assert injector.fires() == {}

    def test_probability_stream_is_seeded(self):
        def run(seed):
            injector = FaultInjector(FaultPlan(seed=seed, rules=(
                FaultRule("reply.delay", probability=0.5,
                          max_fires=None),)))
            return [injector.check("reply.delay") is not None
                    for _ in range(64)]

        assert run(11) == run(11)           # identical run over run
        assert run(11) != run(12)           # and seed-sensitive
        assert any(run(11)) and not all(run(11))

    def test_fires_counted_in_metrics(self):
        from repro.obs.metrics import get_registry

        injector = FaultInjector(FaultPlan(rules=(
            FaultRule("shm.exhaust", max_fires=3),)))
        counter = get_registry().counter("faults_injected_total",
                                         site="shm.exhaust")
        before = counter.value
        for _ in range(5):
            injector.check("shm.exhaust")
        assert counter.value == before + 3


class TestActivation:
    def test_no_plan_means_no_faults(self):
        assert faults.check("worker.crash") is None
        assert faults.active_plan() is None

    def test_install_and_clear(self):
        plan = FaultPlan(rules=(FaultRule("conn.drop"),))
        faults.install_plan(plan)
        assert faults.active_plan() == plan
        assert faults.check("conn.drop") is not None
        assert faults.check("conn.drop") is None    # max_fires=1
        faults.clear_plan()
        assert faults.active_plan() is None

    def test_env_var_inline_json(self, monkeypatch):
        plan = FaultPlan(seed=5, rules=(FaultRule("codegen.raise"),))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        faults.clear_plan()
        # clear_plan marks the env as consulted; reset to simulate a
        # fresh process that reads the variable lazily
        faults._env_checked = False
        assert faults.active_plan() == plan

    def test_env_var_file_path(self, monkeypatch, tmp_path):
        plan = FaultPlan(rules=(FaultRule("worker.hang"),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(faults.ENV_VAR, str(path))
        assert faults.plan_from_env() == plan

    def test_env_var_bad_path_rejected(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "/nonexistent/plan.json")
        with pytest.raises(FaultConfigError, match="neither inline"):
            faults.plan_from_env()

    def test_reset_inherited_state_acts_like_a_fresh_process(
            self, monkeypatch):
        # simulate a fork child: parent had a plan installed...
        faults.install_plan(FaultPlan(rules=(FaultRule("conn.drop"),)))
        env_plan = FaultPlan(seed=5, rules=(FaultRule("worker.hang"),))
        monkeypatch.setenv(faults.ENV_VAR, env_plan.to_json())
        # ...the child sheds it and re-reads the environment lazily
        faults.reset_inherited_state()
        assert faults.active_plan() == env_plan

    def test_reset_inherited_state_without_env_disarms(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.install_plan(FaultPlan(rules=(FaultRule("worker.crash"),)))
        faults.reset_inherited_state()
        assert faults.active_plan() is None
        assert faults.check("worker.crash") is None

    def test_explicit_install_beats_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, FaultPlan(
            rules=(FaultRule("conn.drop"),)).to_json())
        explicit = FaultPlan(rules=(FaultRule("worker.crash"),))
        faults.install_plan(explicit)
        assert faults.active_plan() == explicit
