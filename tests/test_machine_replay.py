"""Conformance tests for the record/replay timing engine.

The replay engine's contract is *bit identity*: every
:class:`~repro.machine.Counters` field — cache hits and misses, branch
misses, cycles — produced by the vectorized models must equal the
per-access reference implementations exactly.  These tests pin that
down at three levels: the array LRU cache against the ``OrderedDict``
reference over randomized address streams (property-based), the
predictor sweep against per-branch updates, and whole-machine replay
against ``sim-ref`` across every registered system, SMP quanta, and
fault-mid-block cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.errors import SegmentationFault
from repro.isa.assembler import Assembler
from repro.isa.operands import Imm, Mem
from repro.isa.registers import regs, ymm
from repro.machine import (
    Cpu,
    CpuConfig,
    CacheConfig,
    CacheHierarchy,
    Machine,
    Memory,
    ThreadSpec,
    VectorCacheHierarchy,
)
from repro.machine.branch import make_predictor, replay_outcomes
from repro.machine.cache import Cache, VectorCache
from repro.machine.pipeline import PipelineSpec

_TWINS = ("uk-2005", "GAP-urand")

#: geometries spanning everything CacheConfig accepts: direct-mapped,
#: single-set (fully associative), tall-and-narrow, wide-and-shallow
GEOMETRIES = [
    CacheConfig(size_bytes=1024, ways=1, line_bytes=64),      # direct-mapped
    CacheConfig(size_bytes=512, ways=8, line_bytes=64),       # one set
    CacheConfig(size_bytes=4096, ways=2, line_bytes=32),
    CacheConfig(size_bytes=8192, ways=8, line_bytes=64),      # bench L1
    CacheConfig(size_bytes=32 * 1024, ways=8, line_bytes=128),
]


def _reference_levels(hierarchy: CacheHierarchy, accesses):
    return [hierarchy.access(addr, size) for addr, size in accesses]


def _vector_levels(hierarchy: VectorCacheHierarchy, accesses):
    addrs = np.array([a for a, _ in accesses], dtype=np.int64)
    sizes = np.array([s for _, s in accesses], dtype=np.int64)
    worst, tri = hierarchy.classify(addrs, sizes)
    names = ["l1", "l2", "mem"]
    assert tri.tolist() == np.bincount(worst, minlength=3).tolist()
    return [names[level] for level in worst.tolist()]


class TestVectorCacheLevel:
    @given(st.lists(st.integers(min_value=0, max_value=400), max_size=300),
           st.sampled_from(GEOMETRIES))
    @settings(max_examples=60, deadline=None)
    def test_single_level_matches_reference(self, lines, config):
        ref = Cache(config)
        vec = VectorCache(config)
        arr = np.array(lines, dtype=np.int64)
        expected = [ref.access(line) for line in lines]
        assert vec.replay(arr).tolist() == expected

    def test_incremental_replay_carries_state(self):
        """Chunked replay (quantum flushes) equals one-shot replay."""
        rng = np.random.default_rng(11)
        lines = rng.integers(0, 300, size=500)
        config = GEOMETRIES[2]
        one = VectorCache(config)
        chunked = VectorCache(config)
        whole = one.replay(lines.astype(np.int64))
        parts = [chunked.replay(chunk.astype(np.int64))
                 for chunk in np.array_split(lines, 13)]
        assert np.array_equal(whole, np.concatenate(parts))

    def test_reset_clears_state(self):
        config = GEOMETRIES[0]
        vec = VectorCache(config)
        lines = np.arange(10, dtype=np.int64)
        first = vec.replay(lines).tolist()
        vec.reset()
        assert vec.replay(lines).tolist() == first


@st.composite
def _access_streams(draw):
    n = draw(st.integers(min_value=0, max_value=200))
    accesses = []
    for _ in range(n):
        # cluster addresses so hits, straddles and conflicts all occur
        base = draw(st.sampled_from([0x10000, 0x11000, 0x40000]))
        offset = draw(st.integers(min_value=0, max_value=2048))
        size = draw(st.sampled_from([1, 4, 8, 32, 64, 128]))
        accesses.append((base + offset, size))
    return accesses


class TestVectorHierarchy:
    @given(_access_streams(),
           st.sampled_from(GEOMETRIES), st.sampled_from(GEOMETRIES))
    @settings(max_examples=60, deadline=None)
    def test_classification_matches_reference(self, accesses, l1, l2):
        ref = CacheHierarchy(l1, l2)
        vec = VectorCacheHierarchy(l1, l2)
        assert _vector_levels(vec, accesses) == _reference_levels(ref,
                                                                  accesses)

    def test_line_straddles_touch_every_line(self):
        """A 128-byte access on a 64-byte-line L1 touches two lines;
        the worst level governs, exactly as the reference walks it."""
        l1 = CacheConfig(size_bytes=1024, ways=1, line_bytes=64)
        accesses = [(0, 128), (0, 64), (64, 64), (0, 128)]
        ref = CacheHierarchy(l1)
        vec = VectorCacheHierarchy(l1)
        assert _vector_levels(vec, accesses) == _reference_levels(ref,
                                                                  accesses)


class TestPredictorReplay:
    @pytest.mark.parametrize("kind", ["gshare", "two_bit"])
    def test_packed_replay_matches_updates(self, kind):
        rng = np.random.default_rng(5)
        stream = [(int(pc), bool(taken))
                  for pc, taken in zip(rng.integers(0, 97, size=400),
                                       rng.integers(0, 2, size=400))]
        ref = make_predictor(kind)
        vec = make_predictor(kind)
        expected = [not ref.update(pc, taken) for pc, taken in stream]
        packed = [(pc << 1) | int(taken) for pc, taken in stream]
        assert replay_outcomes(vec, packed) == expected
        # tables advanced identically: a second round still agrees
        second = [not ref.update(pc, taken) for pc, taken in stream]
        assert replay_outcomes(vec, packed) == second

    def test_custom_predictor_falls_back_to_update(self):
        class AlwaysTaken:
            def update(self, pc, taken):
                return taken

        assert replay_outcomes(AlwaysTaken(), [(5 << 1) | 1, 6 << 1]) == [
            False, True]


# ----------------------------------------------------------------------
# Whole-machine conformance
# ----------------------------------------------------------------------
def _loop_program(data_base, out_base, n, fault_addr=None):
    asm = Assembler("replay-loop")
    asm.mov(regs.rcx, 0)
    asm.mov(regs.rdx, 0)
    asm.label("loop")
    asm.mov(regs.rax, Mem(None, regs.rcx, 1, data_base, size=8))
    asm.add(regs.rdx, regs.rax)
    asm.mov(Mem(None, regs.rcx, 1, out_base, size=8), regs.rdx)
    asm.add(regs.rcx, Imm(8, 64))
    asm.cmp(regs.rcx, Imm(8 * n, 64))
    asm.jl("loop")
    if fault_addr is not None:
        asm.mov(regs.rax, Mem(None, regs.rcx, 1, fault_addr, size=8))
    asm.ret()
    return asm.finish()


def _run_machine(engine, fused, quantum=64, threads=2, fault=False,
                 spec=None):
    mem = Memory()
    data = np.arange(128, dtype=np.int64)
    data_base = mem.map_array(data, "data")
    outs = [mem.map_array(np.zeros(128, dtype=np.int64), f"out{t}")
            for t in range(threads)]
    programs = [_loop_program(data_base, out, 96,
                              fault_addr=0x9990000 if fault else None)
                for out in outs]
    config = CpuConfig(timing=True, engine=engine,
                       pipeline=spec or PipelineSpec())
    machine = Machine(mem, config, quantum=quantum)
    specs = [ThreadSpec(program, name=f"t{t}")
             for t, program in enumerate(programs)]
    error = None
    merged = per_thread = None
    try:
        merged, per_thread = machine.run(specs, fused=fused)
    except SegmentationFault as exc:
        error = str(exc)
    if merged is None:
        return None, None, error
    return merged.as_dict(), [c.as_dict() for c in per_thread], error


class TestMachineReplayConformance:
    @pytest.mark.parametrize("quantum", [1, 3, 17, 64, 1000, 10_000_000])
    def test_quantum_sweep_bit_identical(self, quantum):
        """Includes a quantum far beyond the flush-check stride: the
        turn is internally sliced for recorder-memory pressure, which
        must not change any counter."""
        ref = _run_machine("ref", False, quantum=quantum)
        for fused in (False, True):
            got = _run_machine("replay", fused, quantum=quantum)
            assert got == ref, (quantum, fused)

    def test_fault_counters_bit_identical(self):
        ref = _run_machine("ref", False, fault=True)
        assert ref[2] is not None  # the reference run faulted
        for fused in (False, True):
            assert _run_machine("replay", fused, fault=True) == ref, fused

    @pytest.mark.parametrize("issue_width", [3, 4])
    def test_custom_pipeline_spec(self, issue_width):
        spec = PipelineSpec(issue_width=issue_width,
                            branch_miss_penalty=11.5, dram_service=7.25)
        ref = _run_machine("ref", False, spec=spec)
        assert _run_machine("replay", True, spec=spec) == ref

    def test_gather_partial_fault_bit_identical(self):
        """A gather faulting mid-lane leaves exactly the completed
        lanes' cache events behind, as per-access interpretation does."""
        def run(engine, fused):
            mem = Memory()
            vals = mem.map_array(np.arange(64, dtype=np.float32), "vals")
            idx = np.array([0, 3, 1 << 26, 2, 5, 7, 9, 11], dtype=np.int32)
            idx_base = mem.map_array(idx, "idx")
            asm = Assembler("gather-fault")
            asm.mov(regs.rax, Imm(vals, 64))
            asm.mov(regs.rbx, Imm(idx_base, 64))
            asm.vmovups(ymm(1), Mem(regs.rbx, size=32))
            asm.vgatherdps(ymm(2), Mem(regs.rax, ymm(1), 4, 0, size=4))
            asm.ret()
            cpu = Cpu(mem, CpuConfig(timing=True, engine=engine))
            with pytest.raises(SegmentationFault):
                cpu.run(asm.finish(), fused=fused)
            return cpu.counters.as_dict()

        ref = run("ref", False)
        # the index-vector load plus the two lanes that landed
        assert ref["l1_hits"] + ref["l1_misses"] == 3
        assert run("replay", False) == ref
        assert run("replay", True) == ref

    def test_warmup_reset_keeps_caches_and_predictors_warm(self):
        def run(engine, fused):
            mem = Memory()
            data = mem.map_array(np.arange(64, dtype=np.int64), "d")
            out = mem.map_array(np.zeros(64, dtype=np.int64), "o")
            program = _loop_program(data, out, 48)
            machine = Machine(mem, CpuConfig(timing=True, engine=engine))
            merged, _ = machine.run([ThreadSpec(program)], fused=fused,
                                    warmup=True)
            return merged.as_dict()

        ref = run("ref", False)
        assert run("replay", False) == ref
        assert run("replay", True) == ref

    def test_cycles_published_only_on_clean_completion(self):
        """A faulted run leaves cycles at 0 (the reference never reaches
        the end-of-run publication), while events are all retired."""
        _, _, error = _run_machine("replay", True, fault=True)
        assert error is not None
        merged, _, _ = _run_machine("replay", True, fault=False)
        assert merged["cycles"] > 0


class TestSystemRegistrySweep:
    """Replay vs stepped reference over every registered system."""

    @pytest.fixture(scope="class")
    def twins(self):
        from repro.datasets import load
        return {name: load(name, scale=2.0 ** -21, seed=7)
                for name in _TWINS}

    @pytest.mark.parametrize("system", sorted(
        {repro.get_system(name).name for name in repro.available_systems()}))
    def test_replay_counters_bit_identical(self, twins, system):
        matrix = twins["uk-2005"]
        rng = np.random.default_rng(3)
        x = rng.random((matrix.ncols, 16), dtype=np.float32)
        ref = repro.run(matrix, x, system=system, threads=2,
                        backend="sim-ref")
        for backend in ("sim", "sim-fused"):
            got = repro.run(matrix, x, system=system, threads=2,
                            backend=backend)
            assert np.array_equal(got.y, ref.y), (system, backend)
            assert got.counters.as_dict() == ref.counters.as_dict(), (
                system, backend)
            assert ([c.as_dict() for c in got.per_thread]
                    == [c.as_dict() for c in ref.per_thread]), (
                system, backend)
