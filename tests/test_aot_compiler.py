"""End-to-end AOT compiler tests: every personality computes correct SpMM."""

import numpy as np
import pytest

from repro.aot.compiler import AotCompiler, PERSONALITIES, register_pools_for
from repro.aot.kernels import scalar_spmm_kernel, vectorized_spmm_kernel
from repro.aot.mkl import MklKernel
from repro.core.runner import run_aot, run_mkl
from repro.errors import CodegenError, CompileError
from repro.isa.isainfo import IsaLevel
from repro.sparse import spmm_reference
from tests.conftest import random_csr


class TestKernelConstruction:
    def test_scalar_kernel_validates(self):
        scalar_spmm_kernel(1).validate()
        scalar_spmm_kernel(4).validate()

    def test_bad_unroll_rejected(self):
        with pytest.raises(CompileError):
            scalar_spmm_kernel(0)

    def test_vectorized_kernel_validates(self):
        vectorized_spmm_kernel(16).validate()
        vectorized_spmm_kernel(8).validate()

    def test_bad_lanes_rejected(self):
        with pytest.raises(CompileError):
            vectorized_spmm_kernel(5)

    def test_unroll_shrinks_branch_density(self):
        # the Table II effect: more unrolling, fewer loop back edges
        one = scalar_spmm_kernel(1)
        four = scalar_spmm_kernel(4)
        count_one = sum(len(b.instrs) for b in one.blocks)
        count_four = sum(len(b.instrs) for b in four.blocks)
        assert count_four > count_one  # unrolled body is statically bigger


class TestCompilerDriver:
    def test_unknown_personality(self):
        with pytest.raises(CompileError):
            AotCompiler("msvc")

    def test_personalities_registered(self):
        assert set(PERSONALITIES) == {"gcc", "clang", "icc", "icc-avx512"}

    def test_pools_respect_isa(self):
        avx2 = register_pools_for(IsaLevel.AVX2)
        avx512 = register_pools_for(IsaLevel.AVX512)
        assert max(avx2.vec_pool) < 16
        assert max(avx512.vec_pool) == 31
        assert "rbp" not in avx2.int_pool
        assert "rsp" not in avx2.int_pool

    @pytest.mark.parametrize("name", sorted(PERSONALITIES))
    def test_compiles_and_encodes(self, name):
        kernel = AotCompiler(name).compile_spmm()
        assert len(kernel.program.instructions) > 20
        assert kernel.program.code_size() > 50
        assert kernel.spill_bytes % 64 == 0

    def test_listing_available(self):
        kernel = AotCompiler("gcc").compile_spmm()
        assert "row_head" in kernel.listing()


@pytest.mark.parametrize("name", sorted(PERSONALITIES))
class TestCorrectness:
    def test_matches_reference(self, rng, name):
        matrix = random_csr(rng, 35, 28, density=0.18)
        x = rng.random((28, 5)).astype(np.float32)
        result = run_aot(matrix, x, personality=name, threads=2, timing=False)
        assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-3)

    def test_multiple_thread_counts(self, rng, name):
        matrix = random_csr(rng, 30, 30, density=0.15)
        x = rng.random((30, 17)).astype(np.float32)  # odd d exercises tails
        expected = spmm_reference(matrix, x)
        for threads in (1, 3):
            result = run_aot(matrix, x, personality=name, threads=threads,
                             timing=False)
            assert np.allclose(result.y, expected, atol=1e-3)


class TestMklKernel:
    def test_bad_lanes(self):
        with pytest.raises(CodegenError):
            MklKernel(lanes=4).build()

    @pytest.mark.parametrize("lanes", [8, 16])
    def test_matches_reference(self, rng, lanes):
        matrix = random_csr(rng, 30, 25, density=0.2)
        x = rng.random((25, 19)).astype(np.float32)  # d % lanes != 0
        result = run_mkl(matrix, x, threads=2, lanes=lanes, timing=False)
        assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-3)

    def test_accumulates_in_memory(self, rng):
        # MKL-like kernels store into Y once per (nnz, strip): far more
        # stores than the JIT's once-per-row write-back (paper §IV-D.1)
        matrix = random_csr(rng, 30, 25, density=0.2)
        x = rng.random((25, 16)).astype(np.float32)
        result = run_mkl(matrix, x, threads=1, timing=False)
        assert result.counters.memory_stores > matrix.nnz


class TestProfileShape:
    """The Table II orderings must hold on any reasonable matrix."""

    def test_branch_counts_fall_with_unroll(self, rng):
        matrix = random_csr(rng, 40, 40, density=0.12)
        x = rng.random((40, 8)).astype(np.float32)
        branches = {}
        for name in ("gcc", "clang", "icc"):
            result = run_aot(matrix, x, personality=name, threads=1,
                             timing=False)
            branches[name] = result.counters.branches
        assert branches["gcc"] > branches["clang"] > branches["icc"]

    def test_loads_track_column_count(self, rng):
        # AOT reloads col/vals per column: loads scale ~linearly with d
        matrix = random_csr(rng, 30, 30, density=0.15)
        loads = {}
        for d in (4, 8):
            x = rng.random((30, d)).astype(np.float32)
            result = run_aot(matrix, x, personality="gcc", threads=1,
                             timing=False)
            loads[d] = result.counters.memory_loads
        assert loads[8] > 1.7 * loads[4]
