"""Chaos suite: seeded fault storms against a live gateway.

The acceptance contract of the resilience layer, as one test family:
under a seeded :class:`~repro.faults.FaultPlan` mixing hangs, crashes,
connection drops and shm exhaustion,

* every request that *succeeds* returns bits identical to the
  in-process reference,
* every request that *fails* surfaces a typed :mod:`repro.errors`
  exception — never a raw ``socket`` / ``struct`` / ``Connection``
  error,
* and once the plan goes quiet the pool converges (every worker slot
  live again), traffic is fault-free, and no shm slot leaked.

Fork-started workers keep the file fast; thresholds are hundreds of
milliseconds so supervision acts within a test's patience.
"""

import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.api.config import ExecutionConfig
from repro.errors import ReproError
from repro.faults import FaultPlan, FaultRule
from repro.serve.gateway import Gateway
from repro.sparse import spmm_reference
from tests.conftest import random_csr


def _wait_for(predicate, timeout=60.0, message="condition"):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


STORM = FaultPlan(seed=1234, rules=(
    # worker sites: evaluated per worker process (each worker runs its
    # own schedule), so the pool loses processes mid-storm
    FaultRule("worker.crash", after=2, max_fires=1),
    FaultRule("worker.hang", after=6, max_fires=1, hang_seconds=30.0),
    FaultRule("codegen.raise", after=10, max_fires=1),
    # gateway/client sites: evaluated in the driving process
    FaultRule("conn.drop", after=3, max_fires=2),
    FaultRule("shm.exhaust", after=8, max_fires=2),
))


class TestChaosStorm:
    def test_storm_then_recovery(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=2,
                                 hang_threshold_ms=400.0,
                                 breaker_threshold=2, max_retries=3)
        with Gateway(config, mp_start="fork",
                     breaker_cooldown=0.25) as gateway:
            setup = gateway.connect()
            matrix = random_csr(rng, 96, 64, density=0.2, name="chaos")
            handle = setup.register(matrix, "chaos")
            xs = [rng.random((64, 4)).astype(np.float32)
                  for _ in range(4)]
            references = [spmm_reference(matrix, x) for x in xs]
            for x in xs:                        # warm every shape
                setup.multiply(handle, x)
            setup.close()

            gateway.set_fault_plan(STORM)
            successes, failures, untyped = [], [], []
            lock = threading.Lock()

            def storm_worker(tid: int) -> None:
                client = gateway.connect(retry_seed=tid, backoff_base=0.02)
                try:
                    for i in range(12):
                        which = (tid + i) % len(xs)
                        try:
                            y = client.multiply(handle, xs[which])
                        except ReproError as error:
                            with lock:
                                failures.append(error)
                        except BaseException as error:  # noqa: BLE001
                            with lock:
                                untyped.append(error)
                        else:
                            with lock:
                                successes.append((which, y))
                finally:
                    client.close()

            threads = [threading.Thread(target=storm_worker, args=(tid,))
                       for tid in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(t.is_alive() for t in threads), \
                "storm request hung"

            # contract 1: no raw socket/struct surface, ever
            assert untyped == [], untyped
            # contract 2: every success is bit-identical to reference
            assert successes, "storm starved every request"
            for which, y in successes:
                assert y.tobytes() == references[which].tobytes(), \
                    f"storm corrupted a served result (shape {which})"
            # the plan actually did something in this process
            # (conn.drop / shm.exhaust fire on the driving side)
            assert faults.fires(), "storm injected nothing"

            # contract 3: full recovery once the plan goes quiet
            gateway.set_fault_plan(None)
            _wait_for(lambda: len(gateway.worker_pids()) == config.workers,
                      message="worker pool converged")
            probe = gateway.connect(backoff_base=0.02)
            try:
                deadline = time.perf_counter() + 60
                streak = 0
                while streak < 5:
                    try:
                        y = probe.multiply(handle, xs[0])
                    except ReproError:
                        streak = 0
                        if time.perf_counter() > deadline:
                            raise
                        time.sleep(0.05)
                        continue
                    assert y.tobytes() == references[0].tobytes()
                    streak += 1
                # post-recovery: a clean window of fault-free traffic
                for i in range(12):
                    y = probe.multiply(handle, xs[i % len(xs)])
                    assert y.tobytes() == references[i % len(xs)].tobytes()
            finally:
                probe.close()
            # contract 4: nothing leaked — every shm slot came home
            _wait_for(lambda: gateway.shm_stats().in_use == 0,
                      timeout=10, message="shm slots all released")
            stats = gateway.shm_stats()
            assert stats.in_use == 0
            # and the gateway still answers the control plane
            assert "gateway_requests_total" in gateway.stats_text()

    def test_storm_is_reproducible_in_process(self):
        """The same plan yields the same injection schedule: per-site
        seeded streams and counters, independent of wall clock."""

        def schedule(plan: FaultPlan) -> list:
            injector = faults.FaultInjector(plan)
            hits = []
            for site in ("conn.drop", "shm.exhaust", "worker.crash"):
                hits.append([injector.check(site) is not None
                             for _ in range(16)])
            return hits

        plan = FaultPlan(seed=99, rules=(
            FaultRule("conn.drop", probability=0.5, max_fires=None),
            FaultRule("shm.exhaust", after=4, max_fires=3),
            FaultRule("worker.crash", probability=0.25, max_fires=None),
        ))
        assert schedule(plan) == schedule(plan)
        assert schedule(plan) != schedule(FaultPlan(seed=100,
                                                    rules=plan.rules))
