"""Tests for the JitSpMM engine and the runner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import JitSpMM, multiply_partitioned
from repro.core.runner import run_jit
from repro.errors import ShapeError
from repro.sparse import CsrMatrix, spmm_reference
from tests.conftest import random_csr


class TestMultiplyFastPath:
    @pytest.mark.parametrize("split", ["row", "nnz", "merge"])
    def test_matches_reference(self, rng, split):
        matrix = random_csr(rng, 50, 40)
        x = rng.random((40, 9)).astype(np.float32)
        engine = JitSpMM(split=split, threads=4)
        assert np.allclose(engine.multiply(matrix, x),
                           spmm_reference(matrix, x), atol=1e-4)

    def test_shape_errors(self, rng):
        matrix = random_csr(rng, 10, 10)
        engine = JitSpMM()
        with pytest.raises(ShapeError):
            engine.multiply(matrix, rng.random((11, 3)).astype(np.float32))
        with pytest.raises(ShapeError):
            engine.multiply(matrix, rng.random(10).astype(np.float32))

    def test_bad_config(self):
        with pytest.raises(ShapeError):
            JitSpMM(threads=0)
        with pytest.raises(ShapeError):
            JitSpMM(split="nnz", dynamic=True)

    def test_empty_matrix(self):
        matrix = CsrMatrix.from_dense(np.zeros((8, 8), dtype=np.float32))
        x = np.ones((8, 4), dtype=np.float32)
        assert np.all(JitSpMM(threads=2).multiply(matrix, x) == 0)


class TestProfileSimulatedPath:
    @pytest.mark.parametrize("split,dynamic", [
        ("row", True), ("row", False), ("nnz", False), ("merge", False),
    ])
    def test_simulated_result_correct(self, rng, split, dynamic):
        matrix = random_csr(rng, 40, 30, density=0.15)
        x = rng.random((30, 16)).astype(np.float32)
        engine = JitSpMM(split=split, threads=3, dynamic=dynamic, timing=False)
        result = engine.profile(matrix, x)
        assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-3)
        assert result.counters.instructions > 0
        assert result.codegen_seconds > 0

    def test_result_independent_of_thread_count(self, rng):
        matrix = random_csr(rng, 30, 30, density=0.2)
        x = rng.random((30, 8)).astype(np.float32)
        outputs = []
        for threads in (1, 2, 5):
            engine = JitSpMM(threads=threads, timing=False)
            outputs.append(engine.profile(matrix, x).y.copy())
        assert np.array_equal(outputs[0], outputs[1])
        assert np.array_equal(outputs[1], outputs[2])

    def test_dynamic_processes_every_row_once(self, rng):
        # identity matrix: Y must equal X exactly; any double-processed
        # row would double its output values
        n = 70
        matrix = CsrMatrix.from_dense(np.eye(n, dtype=np.float32))
        x = rng.random((n, 4)).astype(np.float32)
        engine = JitSpMM(split="row", threads=4, batch=16, timing=False)
        result = engine.profile(matrix, x)
        assert np.allclose(result.y, x, atol=1e-6)
        assert result.counters.atomic_ops >= n // 16

    def test_per_thread_counters_sum(self, rng):
        matrix = random_csr(rng, 40, 30, density=0.15)
        x = rng.random((30, 8)).astype(np.float32)
        result = JitSpMM(threads=3, timing=False).profile(matrix, x)
        assert result.counters.instructions == sum(
            c.instructions for c in result.per_thread)

    def test_timing_mode_counts_match_counts_mode(self, rng):
        matrix = random_csr(rng, 25, 25, density=0.2)
        x = rng.random((25, 16)).astype(np.float32)
        fast = JitSpMM(threads=2, timing=False).profile(matrix, x).counters
        slow = JitSpMM(threads=2, timing=True).profile(matrix, x).counters
        for key in ("instructions", "memory_loads", "memory_stores",
                    "branches", "atomic_ops"):
            assert getattr(fast, key) == getattr(slow, key)
        assert slow.cycles > 0 and fast.cycles == 0

    def test_codegen_overhead_metric(self, rng):
        matrix = random_csr(rng, 30, 30, density=0.2)
        x = rng.random((30, 8)).astype(np.float32)
        result = JitSpMM(threads=2, timing=True).profile(matrix, x)
        assert 0 < result.codegen_overhead() < 1


class TestAutoSplit:
    def test_auto_multiply_matches_reference(self, rng):
        matrix = random_csr(rng, 50, 40)
        x = rng.random((40, 9)).astype(np.float32)
        engine = JitSpMM(split="auto", threads=4)
        assert np.allclose(engine.multiply(matrix, x),
                           spmm_reference(matrix, x), atol=1e-4)

    def test_auto_profile_matches_reference(self, rng):
        matrix = random_csr(rng, 40, 30, density=0.15)
        x = rng.random((30, 8)).astype(np.float32)
        result = JitSpMM(split="auto", threads=3, timing=False).profile(
            matrix, x)
        assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-3)

    def test_auto_resolves_via_tuner(self, rng):
        from repro.core.autotune import choose_split
        matrix = random_csr(rng, 40, 30)
        engine = JitSpMM(split="auto", threads=4)
        choice = choose_split(matrix, 8, 4, engine.isa)
        assert engine._resolve(matrix, 8) == (
            choice.split, choice.dynamic, choice.batch)

    def test_auto_rejects_explicit_dynamic(self):
        with pytest.raises(ShapeError):
            JitSpMM(split="auto", dynamic=True)
        with pytest.raises(ShapeError):
            JitSpMM(split="bogus")


class TestSharedCache:
    def test_profile_reuses_cached_kernel(self, rng):
        from repro.serve import KernelCache
        matrix = random_csr(rng, 30, 30, density=0.2)
        x = rng.random((30, 8)).astype(np.float32)
        engine = JitSpMM(threads=2, timing=False, cache=KernelCache())
        cold = engine.profile(matrix, x)
        warm = engine.profile(matrix, x)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.program is cold.program
        assert warm.codegen_seconds == 0.0
        assert np.array_equal(cold.y, warm.y)


class TestInspection:
    def test_inspect_lists_assembly(self, rng):
        matrix = random_csr(rng, 10, 10)
        x = rng.random((10, 45)).astype(np.float32)
        listing = JitSpMM(threads=1).inspect(matrix, x)
        assert "vfmadd231ps" in listing
        assert "lock xadd" in listing  # row-split default is dynamic

    def test_plan_reports_tiles(self):
        engine = JitSpMM()
        tiles = engine.plan(45)
        assert len(tiles) == 1
        assert [p.lanes for p in tiles[0].layout.pieces] == [16, 16, 8, 4, 1]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    d=st.sampled_from([1, 3, 8, 16, 32, 45]),
    split=st.sampled_from(["row", "nnz", "merge"]),
)
def test_property_simulated_jit_equals_reference(seed, d, split):
    rng = np.random.default_rng(seed)
    matrix = random_csr(rng, 20, 15, density=0.25)
    x = rng.random((15, d)).astype(np.float32)
    result = run_jit(matrix, x, split=split, threads=2, timing=False)
    assert np.allclose(result.y, spmm_reference(matrix, x), atol=1e-3)


class TestFastCheckOperands:
    def test_wellformed_passthrough_no_copy(self, rng, small_csr):
        from repro.core.engine import fast_check_operands
        x = rng.random((small_csr.ncols, 8)).astype(np.float32)
        assert fast_check_operands(small_csr, x) is x

    def test_fallback_matches_full_check(self, rng, small_csr):
        from repro.core.engine import check_operands, fast_check_operands
        # float64 input: both paths coerce identically (fresh array)
        x64 = rng.random((small_csr.ncols, 8))
        assert np.array_equal(fast_check_operands(small_csr, x64),
                              check_operands(small_csr, x64))
        # non-contiguous input
        strided = np.asfortranarray(
            rng.random((small_csr.ncols, 8)).astype(np.float32))
        assert np.array_equal(fast_check_operands(small_csr, strided),
                              check_operands(small_csr, strided))

    def test_rejects_malformed_like_full_check(self, rng, small_csr):
        from repro.core.engine import fast_check_operands
        with pytest.raises(ShapeError):
            fast_check_operands(small_csr, rng.random((3, 3, 3)))
        with pytest.raises(ShapeError):
            fast_check_operands(
                small_csr,
                rng.random((small_csr.ncols + 1, 4)).astype(np.float32))
        with pytest.raises(ShapeError):
            fast_check_operands(
                small_csr, np.zeros((small_csr.ncols, 0), dtype=np.float32))

    def test_engine_multiply_accepts_lists(self, small_csr, rng):
        # the fallback keeps the legacy coercion behavior alive
        engine = JitSpMM(split="row", threads=2, timing=False)
        x = rng.random((small_csr.ncols, 4)).astype(np.float32)
        assert np.array_equal(engine.multiply(small_csr, x.tolist()),
                              engine.multiply(small_csr, x))


class TestColumnStacking:
    def test_stack_scatter_roundtrip(self, rng):
        from repro.core.engine import scatter_columns, stack_columns
        xs = [rng.random((10, 3)).astype(np.float32) for _ in range(4)]
        stacked = stack_columns(xs)
        assert stacked.shape == (10, 12)
        for x, view in zip(xs, scatter_columns(stacked, 4)):
            assert np.array_equal(view, x)
            assert view.base is not None        # zero-copy views

    def test_stack_into_pooled_buffer(self, rng):
        from repro.core.engine import stack_columns
        xs = [rng.random((6, 2)).astype(np.float32) for _ in range(3)]
        flat = np.empty(64, dtype=np.float32)
        stacked = stack_columns(xs, out=flat)
        assert stacked.base is flat or stacked.base is not None
        assert np.array_equal(stacked[:, 2:4], xs[1])

    def test_stacked_multiply_bit_identical_per_column_block(self, rng,
                                                            small_csr):
        # the coalescing correctness anchor: one stacked product equals
        # the per-request products bit for bit
        from repro.core.engine import (
            multiply_partitioned, scatter_columns, stack_columns)
        from repro.core.split import partition
        ranges = partition(small_csr, 3, "nnz")
        xs = [rng.random((small_csr.ncols, 5)).astype(np.float32)
              for _ in range(6)]
        stacked = multiply_partitioned(small_csr, stack_columns(xs), ranges)
        for x, block in zip(xs, scatter_columns(stacked, 6)):
            assert np.array_equal(
                block, multiply_partitioned(small_csr, x, ranges))


class TestRangeProductConformance:
    def test_scipy_and_numpy_paths_bit_identical(self, rng, monkeypatch):
        import repro.core.engine as engine_module
        if engine_module._scipy_sparse is None:
            pytest.skip("scipy unavailable; only one path exists")
        from repro.core.split import partition
        for trial in range(5):
            matrix = random_csr(rng, 30 + trial * 7, 25, density=0.3)
            x = (rng.standard_normal((25, 6)) * 100).astype(np.float32)
            ranges = partition(matrix, 3, "row")
            fast = multiply_partitioned(matrix, x, ranges)
            with monkeypatch.context() as patch:
                patch.setattr(engine_module, "_scipy_sparse", None)
                reference = multiply_partitioned(matrix, x, ranges)
            assert np.array_equal(fast, reference)

    def test_matches_spmm_reference(self, rng):
        from repro.sparse.ops import spmm_reference
        from repro.core.split import partition
        matrix = random_csr(rng, 40, 30, density=0.25)
        x = rng.random((30, 7)).astype(np.float32)
        full = [(0, matrix.nrows)]
        assert np.array_equal(multiply_partitioned(matrix, x, full),
                              spmm_reference(matrix, x))
        ranges = partition(matrix, 4, "merge")
        assert np.array_equal(multiply_partitioned(matrix, x, ranges),
                              spmm_reference(matrix, x))
