"""The analytic count model must agree *exactly* with the simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analytic import jit_dynamic_counts, jit_range_counts
from repro.core.codegen import JitKernelSpec
from repro.core.runner import run_jit
from repro.isa.isainfo import IsaLevel
from tests.conftest import random_csr


def _spec(d, m, isa=IsaLevel.AVX512, batch=128):
    return JitKernelSpec(d=d, m=m, row_ptr_addr=0, col_addr=0, vals_addr=0,
                         x_addr=0, y_addr=0, next_addr=1, batch=batch,
                         isa=isa)


def _assert_match(counters, predicted):
    assert counters.instructions == predicted.instructions
    assert counters.memory_loads == predicted.memory_loads
    assert counters.memory_stores == predicted.memory_stores
    assert counters.branches == predicted.branches
    assert counters.atomic_ops == predicted.atomic_ops


@pytest.mark.parametrize("d,isa", [
    (16, IsaLevel.AVX512), (32, IsaLevel.AVX512), (45, IsaLevel.AVX512),
    (8, IsaLevel.SCALAR), (24, IsaLevel.AVX2), (7, IsaLevel.SSE2),
])
def test_range_counts_exact(rng, d, isa):
    matrix = random_csr(rng, 40, 30, density=0.15)
    x = rng.random((30, d)).astype(np.float32)
    result = run_jit(matrix, x, split="nnz", threads=1, timing=False, isa=isa)
    predicted = jit_range_counts(_spec(d, matrix.nrows, isa),
                                 rows=matrix.nrows, nnz=matrix.nnz)
    _assert_match(result.counters, predicted)


@pytest.mark.parametrize("threads,batch", [(1, 128), (2, 16), (4, 8)])
def test_dynamic_counts_exact(rng, threads, batch):
    matrix = random_csr(rng, 50, 40, density=0.15)
    x = rng.random((40, 16)).astype(np.float32)
    result = run_jit(matrix, x, split="row", threads=threads, dynamic=True,
                     batch=batch, timing=False)
    predicted = jit_dynamic_counts(_spec(16, matrix.nrows, batch=batch),
                                   threads=threads,
                                   rows=matrix.nrows, nnz=matrix.nnz)
    _assert_match(result.counters, predicted)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    d=st.integers(1, 64),
    threads=st.integers(1, 4),
    batch=st.sampled_from([4, 16, 128]),
)
def test_property_dynamic_counts_exact(seed, d, threads, batch):
    rng = np.random.default_rng(seed)
    matrix = random_csr(rng, int(rng.integers(1, 40)), 20, density=0.2)
    x = rng.random((20, d)).astype(np.float32)
    result = run_jit(matrix, x, split="row", threads=threads, dynamic=True,
                     batch=batch, timing=False)
    predicted = jit_dynamic_counts(_spec(d, matrix.nrows, batch=batch),
                                   threads=threads,
                                   rows=matrix.nrows, nnz=matrix.nnz)
    _assert_match(result.counters, predicted)


def test_large_scale_estimation(rng):
    """The analytic model prices a paper-scale run in O(1)."""
    spec = _spec(16, 39_459_925)  # uk-2005's real shape
    predicted = jit_range_counts(spec, rows=39_459_925, nnz=936_364_282)
    # ~9 instructions and 3 loads per non-zero, as derived in DESIGN.md
    assert 8 <= predicted.per_nnz(936_364_282) <= 14
    assert predicted.memory_loads / 936_364_282 == pytest.approx(3, abs=0.5)


@pytest.mark.parametrize("d,lanes,threads", [
    (16, 16, 1), (32, 16, 2), (19, 16, 1), (8, 8, 3), (45, 16, 2), (1, 16, 1),
])
def test_mkl_counts_exact(rng, d, lanes, threads):
    from repro.core.analytic import mkl_counts
    from repro.core.runner import run_mkl

    matrix = random_csr(rng, 40, 30, density=0.15)
    x = rng.random((30, d)).astype(np.float32)
    result = run_mkl(matrix, x, threads=threads, lanes=lanes, timing=False)
    predicted = mkl_counts(d, matrix.nrows, matrix.nnz, lanes=lanes,
                           threads=threads)
    c = result.counters
    assert c.instructions == predicted.instructions
    assert c.memory_loads == predicted.memory_loads
    assert c.memory_stores == predicted.memory_stores
    assert c.branches == predicted.branches


def test_mkl_vs_jit_load_ratio_closed_form():
    """At d=16 the MKL kernel does ~4 loads/nnz vs the JIT's 3 (plus a
    store per nnz vs per row) — the register-residency gap of §IV-D.1."""
    from repro.core.analytic import mkl_counts

    nnz, rows = 10_000_000, 400_000
    mkl = mkl_counts(16, rows, nnz, lanes=16)
    jit = jit_range_counts(_spec(16, rows), rows=rows, nnz=nnz)
    assert mkl.memory_loads / nnz == pytest.approx(4, abs=0.2)
    assert jit.memory_loads / nnz == pytest.approx(3, abs=0.2)
    assert mkl.memory_stores > 0.9 * nnz
    assert jit.memory_stores < 2 * rows
