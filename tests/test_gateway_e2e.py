"""End-to-end gateway tests: conformance, backpressure, crash recovery.

Workers are fork-started throughout — spawn re-imports the interpreter
per worker (seconds each); fork keeps the whole file fast.  The
standalone spawn path is covered by the smoke run in CI's networked
bench step, which uses the default start method.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.api import available_systems
from repro.api.config import ExecutionConfig
from repro.errors import (FrameTooLarge, GatewayOverloaded, ShapeError,
                          WorkerCrashed)
from repro.serve import SpmmService
from repro.serve.gateway import Gateway
from repro.sparse import spmm_reference
from tests.conftest import random_csr


def _wait_for(predicate, timeout=20.0, message="condition"):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture(scope="module")
def gateway2():
    """One shared 2-worker gateway (autotuned splits, coalescing on)."""
    config = ExecutionConfig(split="auto", backend="native", workers=2,
                             max_batch=4, flush_us=50.0)
    with Gateway(config, mp_start="fork", obs_label="gwtest") as gateway:
        yield gateway


class TestConformance:
    def test_networked_bit_identical_every_system(self, rng):
        """The acceptance sweep: for every registered system, the
        networked gateway serves bit-identical results to the
        in-process service."""
        matrix = random_csr(rng, 40, 30, density=0.2, name="conf")
        x = rng.random((30, 8)).astype(np.float32)
        for system in available_systems():
            config = ExecutionConfig(split="row", threads=3,
                                     backend="native")
            with SpmmService(threads=3, split="row", backend="native",
                             system=system) as service:
                expected = service.multiply(service.register(matrix), x)
            with Gateway(config, system=system, mp_start="fork") as gateway:
                with gateway.connect() as client:
                    handle = client.register(matrix, "conf")
                    got = client.multiply(handle, x)
            assert got.dtype == np.float32
            assert np.array_equal(got, expected), (
                f"system {system}: networked result differs from "
                f"in-process")

    def test_round_robin_replication_both_workers_serve(self, gateway2,
                                                        rng):
        matrix = random_csr(rng, 36, 28, density=0.25, name="rr")
        x = rng.random((28, 6)).astype(np.float32)
        reference = spmm_reference(matrix, x)
        with gateway2.connect() as client:
            handle = client.register(matrix, "rr")
            results = [client.multiply(handle, x) for _ in range(4)]
        for got in results:
            assert np.allclose(got, reference, atol=1e-4)
        assert results[0].tobytes() == results[1].tobytes()
        served = {index: sum(hs.requests
                             for hs in snap.stats.handles.values())
                  for index, _pid, snap in gateway2.worker_snapshots()}
        # serial requests alternate workers round-robin: both served
        assert all(count >= 1 for count in served.values()), served

    def test_profile_over_the_wire(self, gateway2, rng):
        matrix = random_csr(rng, 30, 24, density=0.3, name="prof")
        x = rng.random((24, 4)).astype(np.float32)
        with gateway2.connect() as client:
            handle = client.register(matrix, "prof")
            y, meta = client.profile(handle, x, backend="counts")
        assert np.allclose(y, spmm_reference(matrix, x), atol=1e-4)
        assert meta["backend"] == "counts"
        assert meta["counters"]["instructions"] > 0

    def test_autotune_memo_shared_across_workers(self, gateway2, rng):
        """A verdict tuned on one worker reaches its sibling through the
        gateway (reply delta -> merge -> seed broadcast)."""
        matrix = random_csr(rng, 44, 32, density=0.3, name="memo")
        x = rng.random((32, 8)).astype(np.float32)
        with gateway2.connect() as client:
            handle = client.register(matrix, "memo")
            client.multiply(handle, x)          # cold: one worker tunes
        assert gateway2.autotune_memo_size() >= 1
        # the seed broadcast precedes the stats op on each pipe (FIFO),
        # so one snapshot round observes the replicated memo
        for _index, _pid, snap in gateway2.worker_snapshots():
            assert snap.autotune_memo["entries"] >= 1

    def test_unregister_propagates(self, gateway2, rng):
        matrix = random_csr(rng, 20, 20, density=0.3, name="gone")
        x = rng.random((20, 4)).astype(np.float32)
        with gateway2.connect() as client:
            handle = client.register(matrix, "gone")
            client.multiply(handle, x)
            client.unregister(handle)
            for _ in range(2):                  # both workers forgot it
                with pytest.raises(ShapeError, match="unknown handle"):
                    client.multiply(handle, x)

    def test_typed_remote_errors(self, gateway2, rng):
        matrix = random_csr(rng, 24, 18, density=0.3, name="err")
        with gateway2.connect() as client:
            with pytest.raises(ShapeError, match="unknown handle"):
                client.multiply(999, np.ones((18, 2), dtype=np.float32))
            handle = client.register(matrix, "err")
            with pytest.raises(ShapeError):
                client.multiply(handle, np.ones((7, 2), dtype=np.float32))

    def test_ping_and_stats(self, gateway2, rng):
        matrix = random_csr(rng, 20, 16, density=0.3, name="stats")
        with gateway2.connect() as client:
            assert client.ping()["workers"] == 2
            handle = client.register(matrix, "stats")
            client.multiply(handle,
                            np.ones((16, 2), dtype=np.float32))
            text = client.stats()
        assert "gateway_requests_total" in text
        assert 'gateway="gwtest"' in text
        # per-worker snapshots carry distinct worker labels (no
        # collision when aggregated at the gateway)
        assert 'worker="0"' in text and 'worker="1"' in text
        assert "serve_requests_total" in text


class TestBackpressure:
    def _slow_profile(self, gateway, client, rng, threads=1):
        """Launch a slow sim-backend profile; returns its thread."""
        matrix = random_csr(rng, 256, 192, density=0.25, name="slow")
        x = rng.random((192, 8)).astype(np.float32)
        handle = client.register(matrix, "slow")
        client.multiply(handle, x)              # warm codegen first
        outcome = {}

        def run():
            try:
                outcome["y"] = client.profile(handle, x, backend="sim")
            except BaseException as error:      # noqa: BLE001 - asserted
                outcome["error"] = error

        thread = threading.Thread(target=run)
        thread.start()
        return thread, outcome

    def test_inflight_cap_rejects_typed(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=1,
                                 max_inflight=1)
        with Gateway(config, mp_start="fork", slots=8) as gateway:
            pin_client = gateway.connect()
            probe = gateway.connect()
            try:
                matrix = random_csr(rng, 20, 16, density=0.3, name="p")
                probe_handle = probe.register(matrix, "p")
                thread, outcome = self._slow_profile(gateway, pin_client,
                                                     rng)
                _wait_for(lambda: gateway.inflight >= 1,
                          message="slow request admitted")
                with pytest.raises(GatewayOverloaded,
                                   match="in flight") as excinfo:
                    probe.multiply(probe_handle,
                                   np.ones((16, 2), dtype=np.float32))
                assert excinfo.value.reason == "inflight"
                thread.join(timeout=60)
                assert "error" not in outcome, outcome.get("error")
            finally:
                pin_client.close()
                probe.close()

    def test_shm_slot_exhaustion_rejects_typed(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=1,
                                 max_inflight=8)
        with Gateway(config, mp_start="fork", slots=1) as gateway:
            pin_client = gateway.connect()
            probe = gateway.connect()
            try:
                matrix = random_csr(rng, 20, 16, density=0.3, name="p")
                probe_handle = probe.register(matrix, "p")
                thread, outcome = self._slow_profile(gateway, pin_client,
                                                     rng)
                _wait_for(lambda: gateway.inflight >= 1,
                          message="slow request admitted")
                with pytest.raises(GatewayOverloaded,
                                   match="shared-memory") as excinfo:
                    probe.multiply(probe_handle,
                                   np.ones((16, 2), dtype=np.float32))
                assert excinfo.value.reason == "shm"
                thread.join(timeout=60)
                assert "error" not in outcome, outcome.get("error")
            finally:
                pin_client.close()
                probe.close()

    def test_tenant_quota_rejects_only_that_tenant(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=1,
                                 max_inflight=8, tenant_quota=1)
        with Gateway(config, mp_start="fork", slots=8) as gateway:
            pin_client = gateway.connect(tenant="acme")
            same = gateway.connect(tenant="acme")
            other = gateway.connect(tenant="globex")
            try:
                matrix = random_csr(rng, 20, 16, density=0.3, name="p")
                handle = same.register(matrix, "p")
                x = np.ones((16, 2), dtype=np.float32)
                thread, outcome = self._slow_profile(gateway, pin_client,
                                                     rng)
                _wait_for(lambda: gateway.inflight >= 1,
                          message="slow request admitted")
                with pytest.raises(GatewayOverloaded,
                                   match="tenant") as excinfo:
                    same.multiply(handle, x)
                assert excinfo.value.reason == "tenant"
                # a different tenant is admitted while acme is at quota
                assert np.allclose(other.multiply(handle, x),
                                   spmm_reference(matrix, x), atol=1e-4)
                thread.join(timeout=60)
                assert "error" not in outcome, outcome.get("error")
            finally:
                pin_client.close()
                same.close()
                other.close()

    def test_request_beyond_slot_capacity_is_typed(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork",
                     slot_bytes=1024) as gateway:
            with gateway.connect() as client:
                matrix = random_csr(rng, 20, 16, density=0.3, name="big")
                handle = client.register(matrix, "big")
                with pytest.raises(FrameTooLarge, match="slot"):
                    client.multiply(
                        handle, np.ones((16, 64), dtype=np.float32))
                # the connection survives a capacity rejection
                y = client.multiply(handle,
                                    np.ones((16, 2), dtype=np.float32))
                assert y.shape == (20, 2)

    def test_oversized_frame_rejected_before_buffering(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork",
                     max_frame=4096) as gateway:
            with gateway.connect() as client:
                with pytest.raises(FrameTooLarge):
                    client.multiply(1, np.ones((16, 512),
                                               dtype=np.float32))


class TestCrashRecovery:
    def test_kill_worker_mid_multiply(self, rng):
        """SIGKILL during a request: the caller gets a clean typed
        WorkerCrashed (no hang), the worker respawns with its
        registrations replayed, and recycled shm slots serve correct
        bits afterwards."""
        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork", slots=2) as gateway:
            # retries would mask the crash (the pool respawns and a
            # replay succeeds — see test_gateway_resilience for that
            # contract); this test pins the *typed error* surface
            pin_client = gateway.connect(max_retries=0)
            client = gateway.connect()
            try:
                matrix = random_csr(rng, 256, 192, density=0.25,
                                    name="crash")
                x = rng.random((192, 8)).astype(np.float32)
                handle = client.register(matrix, "crash")
                client.multiply(handle, x)      # warm codegen
                reference = spmm_reference(matrix, x)
                (victim_pid,) = gateway.worker_pids()
                outcome = {}

                def run():
                    try:
                        outcome["y"] = pin_client.profile(handle, x,
                                                          backend="sim")
                    except BaseException as error:  # noqa: BLE001
                        outcome["error"] = error

                thread = threading.Thread(target=run)
                thread.start()
                _wait_for(lambda: gateway.inflight >= 1,
                          message="victim request admitted")
                os.kill(victim_pid, signal.SIGKILL)
                thread.join(timeout=30)
                assert not thread.is_alive(), "request hung after crash"
                assert isinstance(outcome.get("error"), WorkerCrashed)

                # the pool respawns and replays the registration; poll
                # until the replacement serves (correct bits prove the
                # crashed request's slot was not recycled corrupted)
                deadline = time.perf_counter() + 60
                while True:
                    try:
                        y = client.multiply(handle, x)
                        break
                    except WorkerCrashed:
                        if time.perf_counter() > deadline:
                            raise
                        time.sleep(0.05)
                assert np.allclose(y, reference, atol=1e-4)
                # exercise every slot of the ring post-crash
                for _ in range(4):
                    assert np.allclose(client.multiply(handle, x),
                                       reference, atol=1e-4)
                assert gateway.worker_pids() != [victim_pid]
            finally:
                pin_client.close()
                client.close()

    def test_crash_is_counted(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork",
                     obs_label="gwcrash") as gateway:
            (victim_pid,) = gateway.worker_pids()
            os.kill(victim_pid, signal.SIGKILL)
            _wait_for(lambda: "gateway_worker_crashes_total" in
                      gateway.stats_text() and
                      'gwcrash"} 1' in gateway.stats_text(),
                      message="crash counter increment")


class TestShutdownOp:
    def test_wire_shutdown_sets_event(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork") as gateway:
            with gateway.connect() as client:
                assert not gateway.shutdown_requested.is_set()
                client.shutdown_gateway()
            assert gateway.shutdown_requested.is_set()


class TestTieredGateway:
    def test_promotion_state_survives_worker_respawn(self, rng):
        """Tiering through the gateway: template-first serving is
        bit-identical end to end, per-worker promotion lands under
        live traffic, and a worker SIGKILLed mid-promotion respawns,
        replays its registrations, and re-promotes from scratch."""
        config = ExecutionConfig(split="auto", backend="native",
                                 workers=1, tier_mode="lazy",
                                 promote_after=3)
        with Gateway(config, mp_start="fork") as gateway:
            with gateway.connect() as client:
                matrix = random_csr(rng, 48, 36, density=0.25,
                                    name="tiered")
                x = rng.random((36, 8)).astype(np.float32)
                reference = spmm_reference(matrix, x)
                handle = client.register(matrix, "tiered")
                # template tier through the wire: bit-identical
                assert np.array_equal(client.multiply(handle, x),
                                      reference)

                def promoted_workers():
                    count = 0
                    for _index, _pid, snap in gateway.worker_snapshots():
                        tier = snap.tier
                        if tier and tier.outcomes.get("promoted", 0) >= 1:
                            count += 1
                    return count

                # heat past the threshold until the worker's background
                # promotion lands (the snapshot rides the stats reply)
                deadline = time.perf_counter() + 60
                while not promoted_workers():
                    assert np.array_equal(client.multiply(handle, x),
                                          reference)
                    if time.perf_counter() > deadline:
                        raise AssertionError("promotion never landed")
                    time.sleep(0.01)
                # promoted tier through the wire: still the same bits
                assert np.array_equal(client.multiply(handle, x),
                                      reference)

                # kill the worker: its promoted state dies with it; the
                # respawn replays registrations and starts back on the
                # template tier
                (victim_pid,) = gateway.worker_pids()
                os.kill(victim_pid, signal.SIGKILL)
                deadline = time.perf_counter() + 60
                while True:
                    try:
                        y = client.multiply(handle, x)
                        break
                    except WorkerCrashed:
                        if time.perf_counter() > deadline:
                            raise
                        time.sleep(0.05)
                assert np.array_equal(y, reference)
                assert gateway.worker_pids() != [victim_pid]

                # the replacement re-promotes from replayed state
                deadline = time.perf_counter() + 60
                while not promoted_workers():
                    assert np.array_equal(client.multiply(handle, x),
                                          reference)
                    if time.perf_counter() > deadline:
                        raise AssertionError(
                            "respawned worker never re-promoted")
                    time.sleep(0.01)
                assert np.array_equal(client.multiply(handle, x),
                                      reference)
