"""Tests for the system registry and its built-in registrations."""

import numpy as np
import pytest

import repro
from repro.api import available_systems, get_system, register, unregister
from repro.api.pipeline import System
from repro.api.systems import AotSystem, JitSystem, MklSystem
from repro.errors import CompileError, RegistryError
from tests.conftest import random_csr


class TestBuiltins:
    def test_builtin_names_resolve(self):
        assert isinstance(get_system("jit"), JitSystem)
        assert isinstance(get_system("mkl"), MklSystem)
        for p in ("gcc", "clang", "icc", "icc-avx512"):
            assert isinstance(get_system(f"aot:{p}"), AotSystem)

    def test_aliases_share_the_instance(self):
        assert get_system("gcc") is get_system("aot:gcc")
        assert get_system("icc-avx512") is get_system("aot:icc-avx512")

    def test_resolution_is_singleton(self):
        assert get_system("jit") is get_system("jit")

    def test_available_systems_lists_builtins(self):
        names = available_systems()
        for expected in ("jit", "mkl", "aot:gcc", "aot:icc-avx512", "gcc"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(RegistryError, match="unknown system"):
            get_system("fortran")

    def test_unknown_aot_personality_raises_compile_error(self):
        with pytest.raises(CompileError):
            get_system("aot:tcc")

    def test_lazy_mkl_lane_variant(self):
        system = get_system("mkl:8")
        assert isinstance(system, MklSystem) and system.lanes == 8
        assert system is get_system("mkl:8")  # registered after first use

    def test_system_flags(self):
        assert get_system("jit").supports_autotune
        assert not get_system("jit").address_free
        assert get_system("mkl").address_free
        assert get_system("aot:gcc").address_free


class _Doubler(System):
    """Toy system: Y = 2 * (A @ X), computed host-side (test-only)."""

    name = "test-doubler"
    address_free = True

    def prepare_key(self, config):
        from repro.serve.cache import KernelKey
        return KernelKey(kind="test", variant="doubler")

    def bind(self, artifact, matrix, x, name_prefix=None):
        from repro.api.pipeline import BoundPlan
        from repro.core.split import partition

        plan = BoundPlan(
            artifact, matrix, key=self.prepare_key(artifact.config),
            split=artifact.config.split,
            partitions=partition(matrix, artifact.config.threads,
                                 artifact.config.split),
            ranges=[(0, matrix.nrows)], name_prefix=name_prefix)
        plan.execute = lambda timing=None: self._run(plan, x)  # type: ignore
        return plan

    def _run(self, plan, x):
        from repro.core.runner import RunResult
        from repro.machine import Counters
        from repro.sparse.ops import spmm_reference

        return RunResult(
            y=2.0 * spmm_reference(plan.matrix, x), counters=Counters(),
            per_thread=[], program=None, system=self.name,
            split=plan.split, threads=plan.threads)

    def build_kernel(self, plan):
        return object(), 0.0

    def kernel_nbytes(self, kernel):
        return 0


class TestOpenRegistry:
    def test_register_and_run_custom_system(self, rng):
        register("test-doubler", _Doubler())
        try:
            matrix = random_csr(rng, 20, 15)
            x = rng.random((15, 4)).astype(np.float32)
            result = repro.run(matrix, x, system="test-doubler", threads=2)
            from repro.sparse.ops import spmm_reference
            assert np.allclose(result.y, 2.0 * spmm_reference(matrix, x),
                               atol=1e-5)
            assert result.system == "test-doubler"
        finally:
            unregister("test-doubler")
        with pytest.raises(RegistryError):
            get_system("test-doubler")

    def test_reregistration_replaces(self):
        first, second = _Doubler(), _Doubler()
        register("test-doubler", first)
        register("test-doubler", second)
        try:
            assert get_system("test-doubler") is second
        finally:
            unregister("test-doubler")

    def test_register_rejects_empty_name(self):
        with pytest.raises(RegistryError):
            register("", _Doubler())
