"""Tests for the execution-backend layer (`repro.exec`).

The heart of this file is the simulator conformance contract: the
trace-replay backends (``sim``, ``sim-fused``) must be bit-identical to
the per-access reference (``sim-ref``) on *every* counter field —
cycles and cache levels included — across every registered system,
across dynamic-dispatch races, per thread — while the backend axis
stays selectable from every entry point (``repro.run``, ``JitSpMM``,
``SpmmService``, ``run_jit``/``run_aot``/``run_mkl``).
"""

import dataclasses

import numpy as np
import pytest

import repro
from repro.core.runner import run_aot, run_jit, run_mkl
from repro.datasets import load
from repro.errors import ExecutionLimitExceeded, RegistryError, ShapeError
from repro.exec import Executor, backend_capabilities, get_backend
from repro.serve import SpmmService

_TWINS = ("uk-2005", "GAP-urand")

#: aliases resolve to the same instances; test canonical spellings once
_CANONICAL = [name for name in repro.available_systems()
              if repro.get_system(name).name == name]


@pytest.fixture(scope="module")
def twins():
    return {name: load(name, scale=2.0 ** -21, seed=7) for name in _TWINS}


def _dense(matrix, d=16, seed=99):
    rng = np.random.default_rng(seed)
    return rng.random((matrix.ncols, d), dtype=np.float32)


def _counter_dicts(result):
    return (result.counters.as_dict(),
            [c.as_dict() for c in result.per_thread])


class TestRegistry:
    def test_builtin_backends_available(self):
        names = repro.available_backends()
        for required in ("native", "counts", "sim", "sim-fused", "sim-ref"):
            assert required in names

    def test_aliases_resolve_to_canonical(self):
        assert get_backend("fused").name == "sim-fused"
        assert get_backend("numpy").name == "native"

    def test_unknown_backend_raises(self):
        with pytest.raises(RegistryError, match="unknown execution backend"):
            get_backend("gpu")

    def test_capability_matrix(self):
        matrix = backend_capabilities()
        assert matrix["native"] == {"result": True, "counters": False,
                                    "cycles": False}
        assert matrix["counts"] == {"result": True, "counters": True,
                                    "cycles": False}
        assert matrix["sim"] == {"result": True, "counters": True,
                                 "cycles": True}
        assert matrix["sim-fused"] == {"result": True, "counters": True,
                                       "cycles": True}
        assert matrix["sim-ref"] == {"result": True, "counters": True,
                                     "cycles": True}

    def test_native_needs_no_kernel(self):
        assert get_backend("native").requires_kernel is False
        assert get_backend("sim-fused").requires_kernel is True

    def test_alias_cannot_shadow_a_canonical_backend(self):
        """Regression: an alias colliding with a builtin name used to
        silently hijack it for every resolver."""
        class Hijack(Executor):
            def execute(self, plan):
                raise NotImplementedError

        with pytest.raises(RegistryError, match="shadow"):
            repro.register_backend("turbo", Hijack(), aliases=("sim",))
        # the builtin is untouched either way
        assert get_backend("sim").provides_cycles

    def test_nameless_third_party_backend_gets_its_registry_name(self):
        """An executor that never sets `name` is still addressable and
        normalizes correctly through ExecutionConfig (regression: the
        config once normalized via executor.name, collapsing to '')."""
        class Anonymous(Executor):
            requires_kernel = False

            def execute(self, plan):
                raise NotImplementedError

        repro.register_backend("anon", Anonymous(), aliases=("anon-alias",))
        try:
            assert get_backend("anon").name == "anon"
            config = repro.ExecutionConfig(backend="anon-alias")
            assert config.backend == "anon"
        finally:
            from repro.exec import unregister_backend
            assert unregister_backend("anon")

    def test_third_party_backend_plugs_in(self, twins):
        class Recording(Executor):
            name = "recording"
            requires_kernel = False

            def execute(self, plan):
                result = get_backend("native").execute(plan)
                return dataclasses.replace(result, backend=self.name)

        repro.register_backend("recording", Recording())
        try:
            matrix = twins["uk-2005"]
            x = _dense(matrix)
            result = repro.run(matrix, x, system="jit", threads=2,
                               backend="recording")
            assert result.backend == "recording"
            assert np.array_equal(result.y, repro.spmm_reference(matrix, x))
        finally:
            from repro.exec import unregister_backend
            assert unregister_backend("recording")


class TestExecutionConfig:
    def test_backend_validated_and_normalized(self):
        config = repro.ExecutionConfig(backend="fused")
        assert config.backend == "sim-fused"
        assert config.effective_backend == "sim-fused"

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(RegistryError):
            repro.ExecutionConfig(backend="warp-drive")

    def test_effective_backend_derives_from_timing(self):
        assert repro.ExecutionConfig(timing=True).effective_backend == "sim"
        assert repro.ExecutionConfig(
            timing=False).effective_backend == "counts"

    def test_explicit_backend_beats_timing(self):
        config = repro.ExecutionConfig(timing=True, backend="counts")
        assert config.effective_backend == "counts"

    def test_max_steps_validated(self):
        with pytest.raises(ShapeError, match="max_steps"):
            repro.ExecutionConfig(max_steps=0)


class TestBackendSelection:
    """All four backends, from every entry point (acceptance criterion)."""

    @pytest.mark.parametrize("backend", ["native", "counts", "sim",
                                         "sim-fused"])
    def test_repro_run(self, twins, backend):
        matrix = twins["uk-2005"]
        x = _dense(matrix)
        result = repro.run(matrix, x, system="jit", threads=3,
                           backend=backend)
        assert result.backend == backend
        assert np.array_equal(result.y, repro.spmm_reference(matrix, x))
        if backend == "native":
            assert result.counters.instructions == 0
        else:
            assert result.counters.instructions > 0
        assert (result.counters.cycles > 0) == (backend in ("sim",
                                                            "sim-fused"))

    @pytest.mark.parametrize("backend", ["counts", "sim", "sim-fused"])
    def test_jitspmm(self, twins, backend):
        matrix = twins["GAP-urand"]
        x = _dense(matrix)
        engine = repro.JitSpMM(split="nnz", threads=2, backend=backend)
        result = engine.profile(matrix, x)
        assert result.backend == backend
        assert np.array_equal(result.y, repro.spmm_reference(matrix, x))
        # multiply always serves on the native backend, no codegen
        assert np.array_equal(engine.multiply(matrix, x),
                              repro.spmm_reference(matrix, x))

    @pytest.mark.parametrize("backend", ["counts", "sim", "sim-fused"])
    def test_runner_shims(self, twins, backend):
        matrix = twins["uk-2005"]
        x = _dense(matrix)
        expected = repro.spmm_reference(matrix, x)
        for result in (
            run_jit(matrix, x, threads=2, backend=backend),
            run_aot(matrix, x, personality="gcc", threads=2,
                    backend=backend),
            run_mkl(matrix, x, threads=2, backend=backend),
        ):
            assert result.backend == backend
            assert np.allclose(result.y, expected, atol=1e-4)

    @pytest.mark.parametrize("backend", ["counts", "sim", "sim-fused"])
    def test_service(self, twins, backend):
        matrix = twins["uk-2005"]
        x = _dense(matrix)
        service = SpmmService(threads=2, split="auto", backend=backend)
        handle = service.register(matrix, "t")
        result = service.profile(handle, x)
        assert result.backend == backend
        assert np.array_equal(result.y, repro.spmm_reference(matrix, x))

    def test_bench_harness(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", str(2.0 ** -22))
        monkeypatch.setenv("REPRO_BENCH_DATASETS", "uk-2005")
        monkeypatch.setenv("REPRO_BENCH_THREADS", "2")
        from repro.bench.harness import BenchConfig

        config = BenchConfig()
        for backend in ("counts", "sim", "sim-fused"):
            row = config.run("jit", "uk-2005", 16, backend=backend,
                             timing=backend == "sim")
            assert row.backend == backend
        # an alias spelling hits the canonical memo cell, not a rerun
        fused = config.run("jit", "uk-2005", 16, backend="sim-fused",
                           timing=False)
        assert config.run("jit", "uk-2005", 16, backend="fused",
                          timing=False) is fused


class TestReplayConformance:
    """`sim`/`sim-fused` are bit-identical to the per-access reference."""

    @pytest.mark.parametrize("dataset", _TWINS)
    @pytest.mark.parametrize("system", _CANONICAL)
    def test_bit_identical_to_ref_across_registry(self, twins, system,
                                                  dataset):
        matrix = twins[dataset]
        x = _dense(matrix)
        ref = repro.run(matrix, x, system=system, threads=3,
                        backend="sim-ref")
        for backend in ("sim", "sim-fused"):
            replayed = repro.run(matrix, x, system=system, threads=3,
                                 backend=backend)
            assert np.array_equal(ref.y, replayed.y), (system, backend)
            assert _counter_dicts(ref) == _counter_dicts(replayed), (
                system, backend)

    def test_event_counters_match_counts(self, twins):
        """Against the counts backend: every architectural event agrees;
        the timing model's own products (cycles, cache hit/miss levels)
        are extra on the replay side."""
        timing_model_fields = {"cycles", "l1_hits", "l1_misses",
                               "l2_hits", "l2_misses"}
        matrix = twins["uk-2005"]
        x = _dense(matrix)
        counts = repro.run(matrix, x, system="jit", threads=3,
                           backend="counts")
        fused = repro.run(matrix, x, system="jit", threads=3,
                          backend="sim-fused")
        assert np.array_equal(counts.y, fused.y)
        for merged_counts, merged_fused in zip(
                [counts.counters, *counts.per_thread],
                [fused.counters, *fused.per_thread]):
            a, b = merged_counts.as_dict(), merged_fused.as_dict()
            assert a["cycles"] == 0 and b["cycles"] > 0
            for name in timing_model_fields:
                a.pop(name), b.pop(name)
            assert a == b

    @pytest.mark.parametrize("split,dynamic", [("row", True),
                                               ("row", False),
                                               ("merge", None)])
    def test_dispatch_races_are_reproduced(self, twins, split, dynamic):
        """The lock-xadd batch race resolves identically per thread:
        superblock scheduling preserves the exact interleaving, and the
        replayed timing agrees with per-access interpretation of the
        same interleaving."""
        matrix = twins["GAP-urand"]
        x = _dense(matrix, d=8)
        kwargs = dict(split=split, dynamic=dynamic, threads=4)
        ref = run_jit(matrix, x, backend="sim-ref", **kwargs)
        fused = run_jit(matrix, x, backend="sim-fused", **kwargs)
        assert np.array_equal(ref.y, fused.y)
        assert _counter_dicts(ref) == _counter_dicts(fused)

    def test_warmup_measures_the_warm_run(self, twins):
        """warmup=True warms caches/predictors through the replay
        engine exactly as the reference path does."""
        matrix = twins["uk-2005"]
        x = _dense(matrix)
        for backend in ("sim", "sim-fused"):
            ref = run_jit(matrix, x, split="nnz", threads=2,
                          backend="sim-ref", warmup=True)
            warm = run_jit(matrix, x, split="nnz", threads=2,
                           backend=backend, warmup=True)
            assert _counter_dicts(ref) == _counter_dicts(warm), backend


class TestMaxSteps:
    def test_limit_threads_through_config(self, twins):
        matrix = twins["uk-2005"]
        x = _dense(matrix)
        with pytest.raises(ExecutionLimitExceeded) as excinfo:
            repro.run(matrix, x, system="jit", threads=2, timing=False,
                      max_steps=50)
        message = str(excinfo.value)
        assert "50" in message          # the limit
        assert "thread" in message      # the owning thread
        assert "jit" in message         # its name prefix

    @pytest.mark.parametrize("backend", ["counts", "sim-fused"])
    def test_limit_is_backend_independent(self, twins, backend):
        matrix = twins["uk-2005"]
        x = _dense(matrix)
        with pytest.raises(ExecutionLimitExceeded):
            repro.run(matrix, x, system="jit", threads=2, backend=backend,
                      max_steps=50)

    def test_generous_limit_passes(self, twins):
        matrix = twins["uk-2005"]
        x = _dense(matrix)
        result = repro.run(matrix, x, system="jit", threads=2,
                           backend="sim-fused", max_steps=10_000_000)
        assert np.array_equal(result.y, repro.spmm_reference(matrix, x))


class TestServiceBackendTraffic:
    def test_traffic_is_attributed_per_backend(self, twins):
        matrix = twins["uk-2005"]
        x = _dense(matrix)
        service = SpmmService(threads=2, split="auto", timing=False)
        handle = service.register(matrix, "traffic")
        service.multiply(handle, x)
        service.multiply(handle, x)
        service.profile(handle, x)                        # counts default
        service.profile(handle, x, backend="sim-fused")   # explicit
        service.profile(handle, x, backend="fused")       # alias: same bucket
        service.profile(handle, x, timing=True)           # legacy boolean
        traffic = service.stats.backend_traffic
        assert traffic == {"native": 2, "counts": 1, "sim-fused": 2,
                           "sim": 1}
        report = service.report()
        assert "traffic by backend" in report
        assert "sim-fused=2" in report

    def test_profile_rejects_counterless_backends(self, twins):
        """profile() promises counters; a backend that produces none
        (native) is rejected rather than returning zeros."""
        matrix = twins["uk-2005"]
        x = _dense(matrix)
        service = SpmmService(threads=2, split="row", backend="native")
        handle = service.register(matrix)
        assert np.array_equal(service.multiply(handle, x),
                              repro.spmm_reference(matrix, x))
        with pytest.raises(ShapeError, match="counters"):
            service.profile(handle, x)
        other = SpmmService(threads=2, split="row")
        with pytest.raises(ShapeError, match="counters"):
            other.profile(other.register(matrix), x, backend="native")

    def test_constructor_backend_is_the_profile_default(self, twins):
        matrix = twins["uk-2005"]
        x = _dense(matrix)
        service = SpmmService(threads=2, split="row", backend="sim-fused")
        handle = service.register(matrix)
        result = service.profile(handle, x)
        assert result.backend == "sim-fused"
        assert service.stats.backend_traffic == {"sim-fused": 1}
