"""Tests for SpmmService and the serving statistics."""

import threading

import numpy as np
import pytest

from repro.core.runner import run_jit
from repro.errors import ShapeError
from repro.serve import KernelCache, SpmmService
from repro.serve.stats import HandleStats, LatencyStat, ServiceStats
from repro.sparse import spmm_reference
from tests.conftest import random_csr


@pytest.fixture
def service():
    return SpmmService(threads=3, split="auto", timing=False)


class TestRegistration:
    def test_register_returns_distinct_handles(self, rng, service):
        h1 = service.register(random_csr(rng, 20, 20))
        h2 = service.register(random_csr(rng, 20, 20))
        assert h1.handle_id != h2.handle_id

    def test_unknown_handle_rejected(self, rng, service):
        foreign = SpmmService(threads=2).register(random_csr(rng, 10, 10))
        with pytest.raises(ShapeError):
            service.multiply(foreign, rng.random((10, 4)).astype(np.float32))

    def test_operand_validation(self, rng, service):
        handle = service.register(random_csr(rng, 10, 10))
        with pytest.raises(ShapeError):
            service.multiply(handle, rng.random((11, 4)).astype(np.float32))

    def test_unregister_releases_resources(self, rng, service):
        matrix = random_csr(rng, 30, 30)
        x = rng.random((30, 8)).astype(np.float32)
        handle = service.register(matrix, name="temp")
        service.multiply(handle, x)
        assert len(service.cache) == 1
        service.unregister(handle)
        assert len(service.cache) == 0
        assert not service._workspaces
        with pytest.raises(ShapeError):
            service.multiply(handle, x)
        with pytest.raises(ShapeError):
            service.unregister(handle)
        # the stream history survives for reporting
        assert "temp" in service.report()

    def test_unregister_keeps_kernel_shared_by_twin_handle(self, rng):
        # two same-shaped matrices bake identical addresses and share
        # one cached kernel; dropping one handle must not evict it
        service = SpmmService(threads=2, split="row", timing=False)
        matrix = random_csr(rng, 20, 20, density=0.3, name="a")
        twin = type(matrix)(matrix.nrows, matrix.ncols,
                            matrix.row_ptr.copy(),
                            matrix.col_indices.copy(),
                            matrix.vals.copy(), name="b")
        a = service.register(matrix)
        b = service.register(twin)
        x = rng.random((20, 8)).astype(np.float32)
        service.multiply(a, x)
        service.multiply(b, x)
        assert len(service.cache) == 1          # shared kernel identity
        service.unregister(a)
        assert len(service.cache) == 1          # b still serves from it
        service.multiply(b, x)
        assert service.handle_stats(b).codegen_runs == 0

    def test_unregister_never_mutates_shared_cache(self, rng):
        from repro.serve import KernelCache
        shared = KernelCache()
        service = SpmmService(threads=2, split="row", cache=shared)
        handle = service.register(random_csr(rng, 30, 30))
        service.multiply(handle, rng.random((30, 8)).astype(np.float32))
        assert len(shared) == 1
        service.unregister(handle)
        assert len(shared) == 1                 # external cache untouched

    def test_shared_kernel_first_request_is_cold_without_codegen(self, rng):
        service = SpmmService(threads=2, split="row", timing=False)
        matrix = random_csr(rng, 25, 25)
        a = service.register(matrix, "a")
        twin = type(matrix)(matrix.nrows, matrix.ncols,
                            matrix.row_ptr.copy(),
                            matrix.col_indices.copy(), matrix.vals.copy())
        b = service.register(twin, "b")
        x = rng.random((25, 8)).astype(np.float32)
        service.multiply(a, x)
        service.multiply(b, x)
        stats = service.handle_stats(b)
        # b's first request paid autotune+mapping (cold) but no codegen
        assert stats.cold.count == 1
        assert stats.codegen_runs == 0


class TestMultiply:
    @pytest.mark.parametrize("split", ["row", "nnz", "merge", "auto"])
    def test_matches_reference(self, rng, split):
        service = SpmmService(threads=3, split=split, timing=False)
        matrix = random_csr(rng, 50, 40)
        x = rng.random((40, 9)).astype(np.float32)
        handle = service.register(matrix)
        assert np.allclose(service.multiply(handle, x),
                           spmm_reference(matrix, x), atol=1e-4)

    def test_codegen_runs_exactly_once(self, rng, service):
        matrix = random_csr(rng, 40, 30)
        x = rng.random((30, 8)).astype(np.float32)
        handle = service.register(matrix)
        for _ in range(10):
            service.multiply(handle, x)
        stats = service.handle_stats(handle)
        assert stats.requests == 10
        assert stats.codegen_runs == 1
        assert stats.cold.count == 1 and stats.warm.count == 9
        # one counted probe per request: the cold one is a single miss
        cache = service.cache.stats()
        assert cache.misses == 1 and cache.hits == 9

    def test_kernel_prefetch_charges_codegen_stats(self, rng, service):
        matrix = random_csr(rng, 40, 30)
        handle = service.register(matrix)
        service.kernel(handle, 8)          # prefetch, no request served
        stats = service.handle_stats(handle)
        assert stats.codegen_runs == 1
        assert stats.codegen_seconds > 0
        assert stats.requests == 0
        service.multiply(handle, rng.random((30, 8)).astype(np.float32))
        stats = service.handle_stats(handle)
        assert stats.codegen_runs == 1     # still just the prefetch
        assert stats.warm.count == 1       # request after prefetch is warm
        assert stats.codegen_overhead() > 0

    def test_cache_hit_returns_identical_program(self, rng, service):
        matrix = random_csr(rng, 40, 30)
        x = rng.random((30, 8)).astype(np.float32)
        handle = service.register(matrix)
        service.multiply(handle, x)
        first = service.kernel(handle, 8)
        service.multiply(handle, x)
        assert service.kernel(handle, 8) is first
        assert service.kernel(handle, 8).program is first.program

    def test_new_width_is_a_new_kernel(self, rng, service):
        matrix = random_csr(rng, 40, 30)
        handle = service.register(matrix)
        service.multiply(handle, rng.random((30, 8)).astype(np.float32))
        service.multiply(handle, rng.random((30, 16)).astype(np.float32))
        assert service.handle_stats(handle).codegen_runs == 2
        assert len(service.cache) == 2

    def test_eviction_triggers_regeneration(self, rng):
        # a budget too small for two kernels: the second insert evicts
        # the first, so alternating widths regenerates every time
        service = SpmmService(threads=2, split="row", timing=False,
                              cache=KernelCache(max_entries=1))
        matrix = random_csr(rng, 30, 30)
        handle = service.register(matrix)
        x8 = rng.random((30, 8)).astype(np.float32)
        x16 = rng.random((30, 16)).astype(np.float32)
        service.multiply(handle, x8)
        service.multiply(handle, x16)
        service.multiply(handle, x8)
        assert service.handle_stats(handle).codegen_runs == 3
        assert service.cache.stats().evictions == 2

    def test_amortized_overhead_decreases(self, rng, service):
        matrix = random_csr(rng, 40, 30)
        x = rng.random((30, 8)).astype(np.float32)
        handle = service.register(matrix)
        service.multiply(handle, x)
        overheads = []
        for _ in range(5):
            service.multiply(handle, x)
            overheads.append(service.handle_stats(handle).codegen_overhead())
        assert overheads[0] > 0
        assert all(b < a for a, b in zip(overheads, overheads[1:]))

    def test_auto_split_choice_exposed(self, rng, service):
        matrix = random_csr(rng, 40, 30)
        handle = service.register(matrix)
        service.multiply(handle, rng.random((30, 8)).astype(np.float32))
        choice = service.choice(handle, 8)
        assert choice is not None
        assert choice.split in ("row", "nnz", "merge")

    def test_choice_inspection_costs_no_codegen(self, rng, service):
        matrix = random_csr(rng, 40, 30)
        handle = service.register(matrix)
        assert service.choice(handle, 8) is not None
        stats = service.handle_stats(handle)
        assert stats.codegen_runs == 0 and len(service.cache) == 0

    def test_fixed_split_has_no_choice(self, rng):
        service = SpmmService(threads=2, split="merge")
        handle = service.register(random_csr(rng, 20, 20))
        service.multiply(handle, rng.random((20, 4)).astype(np.float32))
        assert service.choice(handle, 4) is None


class TestProfile:
    @pytest.mark.parametrize("split", ["row", "nnz", "merge"])
    def test_simulated_bit_equal_to_fresh_kernel(self, rng, split):
        service = SpmmService(threads=3, split=split, timing=False)
        matrix = random_csr(rng, 40, 30, density=0.15)
        x = rng.random((30, 16)).astype(np.float32)
        handle = service.register(matrix)
        warmed = None
        for _ in range(2):          # second run must reuse the program
            warmed = service.profile(handle, x)
        fresh = run_jit(matrix, x, split=split, threads=3, timing=False)
        assert warmed.cache_hit
        assert np.array_equal(warmed.y, fresh.y)

    def test_profile_reuses_cached_program(self, rng, service):
        matrix = random_csr(rng, 30, 30, density=0.2)
        x = rng.random((30, 8)).astype(np.float32)
        handle = service.register(matrix)
        cold = service.profile(handle, x)
        warm = service.profile(handle, x)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.program is cold.program
        assert cold.codegen_seconds > 0 and warm.codegen_seconds == 0.0
        assert warm.counters.instructions == cold.counters.instructions

    def test_profile_sees_fresh_x_per_request(self, rng, service):
        matrix = random_csr(rng, 25, 25, density=0.2)
        handle = service.register(matrix)
        x1 = rng.random((25, 8)).astype(np.float32)
        x2 = rng.random((25, 8)).astype(np.float32)
        y1 = service.profile(handle, x1).y
        y2 = service.profile(handle, x2).y
        assert np.allclose(y1, spmm_reference(matrix, x1), atol=1e-3)
        assert np.allclose(y2, spmm_reference(matrix, x2), atol=1e-3)
        assert not np.array_equal(y1, y2)

    def test_multiply_and_profile_share_kernel(self, rng, service):
        matrix = random_csr(rng, 30, 30)
        x = rng.random((30, 8)).astype(np.float32)
        handle = service.register(matrix)
        y_fast = service.multiply(handle, x)
        result = service.profile(handle, x)
        assert result.cache_hit        # multiply already generated it
        assert np.allclose(y_fast, result.y, atol=1e-3)
        stats = service.handle_stats(handle)
        assert stats.codegen_runs == 1
        assert stats.profiled_requests == 1

    def test_concurrent_profiles_stay_isolated(self, rng, service):
        # the per-workspace lock must keep simultaneous profiles of the
        # same (handle, d) from trampling the shared mapped X/Y
        matrix = random_csr(rng, 25, 25, density=0.2)
        handle = service.register(matrix)
        xs = [rng.random((25, 8)).astype(np.float32) for _ in range(4)]
        results = [None] * len(xs)

        def run(i):
            results[i] = service.profile(handle, xs[i]).y

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(xs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for x, y in zip(xs, results):
            assert np.allclose(y, spmm_reference(matrix, x), atol=1e-3)

    def test_concurrent_cold_twins_generate_once(self, rng):
        # same-shaped handles share a kernel identity; simultaneous
        # first requests must produce exactly one codegen run total
        service = SpmmService(threads=2, split="row", timing=False)
        matrix = random_csr(rng, 30, 30)
        twins = [matrix] + [
            type(matrix)(matrix.nrows, matrix.ncols, matrix.row_ptr.copy(),
                         matrix.col_indices.copy(), matrix.vals.copy())
            for _ in range(3)
        ]
        handles = [service.register(m) for m in twins]
        x = rng.random((30, 8)).astype(np.float32)
        barrier = threading.Barrier(len(handles))

        def cold_request(handle):
            barrier.wait()
            service.multiply(handle, x)

        threads = [threading.Thread(target=cold_request, args=(h,))
                   for h in handles]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert service.stats.codegen_runs == 1
        assert len(service.cache) == 1

    def test_concurrent_multiplies_codegen_once(self, rng, service):
        matrix = random_csr(rng, 30, 30)
        x = rng.random((30, 8)).astype(np.float32)
        expected = spmm_reference(matrix, x)
        handle = service.register(matrix)
        errors = []

        def run():
            for _ in range(10):
                if not np.allclose(service.multiply(handle, x),
                                   expected, atol=1e-4):
                    errors.append("mismatch")  # pragma: no cover

        threads = [threading.Thread(target=run) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = service.handle_stats(handle)
        assert stats.requests == 40
        assert stats.codegen_runs == 1

    def test_report_renders(self, rng, service):
        matrix = random_csr(rng, 30, 30)
        handle = service.register(matrix, name="demo")
        service.multiply(handle, rng.random((30, 8)).astype(np.float32))
        report = service.report()
        assert "demo" in report
        assert "kernel cache" in report
        assert "amortized" in report


class TestStats:
    def test_latency_stat_streaming(self):
        stat = LatencyStat()
        for value in (0.2, 0.1, 0.4):
            stat.observe(value)
        assert stat.count == 3
        assert stat.min_seconds == pytest.approx(0.1)
        assert stat.max_seconds == pytest.approx(0.4)
        assert stat.mean_seconds == pytest.approx(0.7 / 3)

    def test_handle_stats_accounting(self):
        stats = HandleStats(name="h")
        stats.record_codegen(0.3)
        stats.observe(0.5, cold=True, exec_seconds=0.2)
        stats.observe(0.1, cold=False)
        stats.observe(0.1, cold=False, profiled=True)
        assert stats.requests == 3
        assert stats.codegen_runs == 1
        assert stats.profiled_requests == 1
        assert stats.codegen_seconds == pytest.approx(0.3)
        assert stats.exec_seconds == pytest.approx(0.4)
        assert stats.codegen_overhead() == pytest.approx(0.3 / 0.7)

    def test_empty_overhead_is_zero(self):
        assert HandleStats().codegen_overhead() == 0.0
        assert ServiceStats().codegen_overhead() == 0.0

    def test_service_stats_aggregate(self):
        stats = ServiceStats()
        stats.handle(0, "a").record_codegen(0.1)
        stats.handle(0, "a").observe(0.2, cold=True, exec_seconds=0.1)
        stats.handle(1, "b").observe(0.3, cold=False)
        assert stats.requests == 2
        assert stats.codegen_runs == 1
        assert stats.codegen_overhead() == pytest.approx(0.1 / 0.5)
        assert "a" in stats.render() and "b" in stats.render()


class TestThroughputStats:
    def test_batch_histogram_and_mean(self):
        stats = HandleStats(name="h")
        stats.record_batch(1)
        stats.record_batch(4)
        stats.record_batch(4)
        assert stats.batches == {1: 1, 4: 2}
        service_stats = ServiceStats(handles={0: stats})
        assert service_stats.batch_sizes == {1: 1, 4: 2}
        assert service_stats.mean_batch_size() == pytest.approx(3.0)
        assert "batches" in service_stats.render()
        assert "1x1 4x2" in stats.render()

    def test_mean_batch_size_empty(self):
        assert ServiceStats().mean_batch_size() == 0.0
        assert ServiceStats().batch_sizes == {}

    def test_timed_lock_counts_contention(self):
        import time
        from repro.serve import TimedLock
        lock = TimedLock()
        with lock:
            pass
        assert lock.stats().acquisitions == 1
        assert lock.stats().waits == 0

        def holder():
            with lock:
                time.sleep(0.05)

        thread = threading.Thread(target=holder)
        thread.start()
        time.sleep(0.01)
        with lock:                       # contends with the holder
            pass
        thread.join()
        stats = lock.stats()
        assert stats.acquisitions == 3
        assert stats.waits == 1
        assert stats.wait_seconds > 0
        assert stats.contention_rate == pytest.approx(1 / 3)

    def test_lock_stats_addition_and_render(self):
        from repro.serve import LockStats
        total = (LockStats(acquisitions=4, waits=1, wait_seconds=0.5)
                 + LockStats(acquisitions=6, waits=1, wait_seconds=0.25))
        assert total.acquisitions == 10 and total.waits == 2
        assert total.wait_seconds == pytest.approx(0.75)
        assert "lock contention" in total.render()

    def test_service_report_includes_new_sections(self, rng, service):
        handle = service.register(random_csr(rng, 30, 30), name="demo")
        service.multiply(handle, rng.random((30, 8)).astype(np.float32))
        report = service.report()
        assert "lock contention" in report
        assert "workspace pool" in report
        assert "autotune memo" in report

    def test_service_lock_stats_aggregate(self, rng, service):
        handle = service.register(random_csr(rng, 30, 30))
        service.multiply(handle, rng.random((30, 8)).astype(np.float32))
        stats = service.lock_stats()
        assert stats.acquisitions > 0
        assert stats.waits >= 0
