"""Tests for the workspace pool (repro.serve.pool)."""

import threading

import numpy as np
import pytest

from repro.serve import WorkspacePool
from repro.serve.pool import _MIN_BUCKET


class TestBuckets:
    def test_minimum_bucket(self):
        assert WorkspacePool.bucket_size(1) == _MIN_BUCKET
        assert WorkspacePool.bucket_size(_MIN_BUCKET) == _MIN_BUCKET

    def test_power_of_two_rounding(self):
        assert WorkspacePool.bucket_size(65) == 128
        assert WorkspacePool.bucket_size(128) == 128
        assert WorkspacePool.bucket_size(129) == 256

    def test_acquire_returns_bucket_sized_flat_f32(self):
        pool = WorkspacePool()
        buffer = pool.acquire(100)
        assert buffer.dtype == np.float32
        assert buffer.ndim == 1
        assert buffer.size == 128

    def test_invalid_sizes_rejected(self):
        pool = WorkspacePool()
        with pytest.raises(ValueError):
            pool.acquire(0)
        with pytest.raises(ValueError):
            pool.release(np.zeros(100, dtype=np.float32))  # not a bucket
        with pytest.raises(ValueError):
            WorkspacePool(max_bytes=-1)


class TestReuse:
    def test_release_then_acquire_recycles(self):
        pool = WorkspacePool()
        first = pool.acquire(200)
        pool.release(first)
        second = pool.acquire(200)
        assert second is first
        stats = pool.stats()
        assert stats.allocations == 1 and stats.reuses == 1
        assert stats.reuse_rate == 0.5

    def test_distinct_buckets_do_not_mix(self):
        pool = WorkspacePool()
        small = pool.acquire(10)
        pool.release(small)
        big = pool.acquire(10_000)
        assert big is not small
        assert big.size >= 10_000

    def test_cap_drops_instead_of_retaining(self):
        pool = WorkspacePool(max_bytes=4 * 128)     # one 128-element slot
        a = pool.acquire(128)
        b = pool.acquire(128)
        pool.release(a)
        pool.release(b)                              # over the cap: dropped
        stats = pool.stats()
        assert stats.dropped == 1
        assert stats.retained_bytes == 4 * 128

    def test_clear_releases_retained(self):
        pool = WorkspacePool()
        pool.release(pool.acquire(64))
        assert pool.retained_bytes > 0
        pool.clear()
        assert pool.retained_bytes == 0

    def test_stats_render(self):
        pool = WorkspacePool()
        pool.release(pool.acquire(64))
        pool.acquire(64)
        text = pool.stats().render()
        assert "workspace pool" in text and "reuses" in text

    def test_thread_safety_smoke(self):
        pool = WorkspacePool()
        errors = []

        def churn():
            try:
                for _ in range(200):
                    buffer = pool.acquire(512)
                    buffer[:4] = 1.0
                    pool.release(buffer)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = pool.stats()
        assert stats.requests == 800 and stats.releases == 800
