"""repro.obs.trace: rings, spans, trace ids, concurrency."""

import json
import threading

import pytest

from repro.obs.export import chrome_trace_json
from repro.obs.trace import (
    Tracer,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    trace_context,
    tracing_enabled,
)


@pytest.fixture
def tracer():
    return Tracer(capacity=64, enabled=True)


# ----------------------------------------------------------------------
# Basic span mechanics
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_records_name_attrs_and_duration(self, tracer):
        with tracer.span("unit.work", kind="test") as sp:
            sp.annotate(extra=7)
        (record,) = tracer.spans()
        assert record.name == "unit.work"
        assert record.attrs == {"kind": "test", "extra": 7}
        assert record.end >= record.start
        assert record.duration == record.end - record.start

    def test_disabled_tracer_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a")
        second = tracer.span("b", x=1)
        assert first is second           # one shared no-op object
        with first as sp:
            sp.annotate(anything=True)   # all no-ops
        assert tracer.spans() == []

    def test_exception_annotates_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("unit.fails"):
                raise ValueError("boom")
        (record,) = tracer.spans()
        assert record.attrs["error"] == "ValueError"

    def test_name_may_also_be_an_attribute(self, tracer):
        with tracer.span("unit.named", name="the-attr"):
            pass
        (record,) = tracer.spans()
        assert record.name == "unit.named"
        assert record.attrs["name"] == "the-attr"

    def test_event_records_zero_duration_marker(self, tracer):
        tracer.event("unit.marker", n=3)
        (record,) = tracer.spans()
        assert record.start == record.end
        assert record.attrs == {"n": 3}

    def test_clear_resets_rings_in_place(self, tracer):
        with tracer.span("unit.work"):
            pass
        tracer.clear()
        assert tracer.spans() == []
        with tracer.span("unit.more"):
            pass
        assert [r.name for r in tracer.spans()] == ["unit.more"]


# ----------------------------------------------------------------------
# Trace-id scoping
# ----------------------------------------------------------------------
class TestTraceIds:
    def test_nested_spans_share_the_root_id(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.trace_id == outer.trace_id != ""

    def test_sibling_roots_get_distinct_ids(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.spans()
        assert first.trace_id != second.trace_id

    def test_trace_context_pins_an_explicit_id(self, tracer):
        with tracer.trace_context("req-42"):
            with tracer.span("root"):
                pass
            with tracer.span("another"):
                pass
        assert {r.trace_id for r in tracer.spans()} == {"req-42"}
        with tracer.span("after"):
            pass
        after = tracer.spans()[-1]
        assert after.trace_id not in ("", "req-42")

    def test_current_trace_id_inside_and_outside(self, tracer):
        assert tracer.current_trace_id() == ""
        with tracer.span("root"):
            inside = tracer.current_trace_id()
            assert inside != ""
        assert tracer.current_trace_id() == ""
        (record,) = tracer.spans()
        assert record.trace_id == inside


# ----------------------------------------------------------------------
# Ring buffer behavior
# ----------------------------------------------------------------------
class TestRing:
    def test_wraparound_keeps_newest_and_counts_drops(self):
        tracer = Tracer(capacity=8, enabled=True)
        for index in range(20):
            with tracer.span("unit.w", index=index):
                pass
        records = tracer.spans()
        assert len(records) == 8
        assert [r.attrs["index"] for r in records] == list(range(12, 20))
        assert tracer.dropped() == 12

    def test_no_drops_below_capacity(self, tracer):
        for index in range(10):
            with tracer.span("unit.w", index=index):
                pass
        assert tracer.dropped() == 0
        assert len(tracer.spans()) == 10

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


# ----------------------------------------------------------------------
# Concurrency: per-thread rings, no cross-talk, monotonic per thread
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_contended_emission_loses_nothing_within_capacity(self):
        threads, per_thread = 8, 200
        tracer = Tracer(capacity=per_thread, enabled=True)
        barrier = threading.Barrier(threads)

        def worker(wid):
            barrier.wait()
            for index in range(per_thread):
                with tracer.span("unit.cc", wid=wid, index=index):
                    pass

        workers = [threading.Thread(target=worker, args=(wid,))
                   for wid in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        records = tracer.spans()
        assert len(records) == threads * per_thread
        assert tracer.dropped() == 0
        # each thread's records are complete and in emission order
        by_wid = {}
        for record in records:
            by_wid.setdefault(record.attrs["wid"], []).append(record)
        assert set(by_wid) == set(range(threads))
        for batch in by_wid.values():
            assert [r.attrs["index"] for r in batch] == list(
                range(per_thread))
            starts = [r.start for r in batch]
            assert starts == sorted(starts)

    def test_wraparound_under_contention_counts_drops(self):
        threads, per_thread, capacity = 4, 300, 64
        tracer = Tracer(capacity=capacity, enabled=True)
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                with tracer.span("unit.wrap"):
                    pass

        workers = [threading.Thread(target=worker) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert len(tracer.spans()) == threads * capacity
        assert tracer.dropped() == threads * (per_thread - capacity)

    def test_threads_get_independent_trace_ids(self):
        tracer = Tracer(enabled=True)
        seen = []

        def worker():
            with tracer.span("unit.root"):
                seen.append(tracer.current_trace_id())

        workers = [threading.Thread(target=worker) for _ in range(6)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert len(set(seen)) == 6

    def test_chrome_export_round_trips_and_is_monotonic_per_thread(self):
        threads, per_thread = 4, 50
        tracer = Tracer(capacity=per_thread, enabled=True)
        # all workers overlap in time, so OS thread ids are distinct
        # (a finished thread's ident is reusable)
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                with tracer.span("unit.exp"):
                    pass

        workers = [threading.Thread(target=worker) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        document = json.loads(chrome_trace_json(tracer=tracer))
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == threads * per_thread
        by_tid = {}
        for event in events:
            by_tid.setdefault(event["tid"], []).append(event["ts"])
        assert len(by_tid) == threads
        for stamps in by_tid.values():
            assert stamps == sorted(stamps)
        assert document["otherData"]["dropped_spans"] == 0


# ----------------------------------------------------------------------
# Module-level switch
# ----------------------------------------------------------------------
class TestGlobalTracer:
    def test_enable_disable_round_trip(self):
        assert not tracing_enabled()
        try:
            enable_tracing()
            assert tracing_enabled()
            with span("unit.global", here=True):
                assert current_trace_id() != ""
            names = [r.name for r in get_tracer().spans()]
            assert "unit.global" in names
        finally:
            disable_tracing()
            get_tracer().clear()
        assert not tracing_enabled()

    def test_disabled_module_span_is_noop(self):
        assert not tracing_enabled()
        with span("unit.off") as sp:
            sp.annotate(x=1)
        assert all(r.name != "unit.off" for r in get_tracer().spans())

    def test_trace_context_at_module_level(self):
        try:
            enable_tracing()
            with trace_context() as trace_id:
                with span("unit.pinned"):
                    pass
            assert any(r.trace_id == trace_id
                       for r in get_tracer().spans())
        finally:
            disable_tracing()
            get_tracer().clear()
