"""Tests for the register layout planner (paper Fig. 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layout import (
    accumulator_capacity,
    decompose,
    plan_layout,
    tile_columns,
)
from repro.errors import CodegenError
from repro.isa.isainfo import IsaLevel, isa_spec


class TestDecompose:
    def test_paper_example_d45(self):
        # paper §IV-D.1: 45 = 16(ZMM0)+16(ZMM1)+8(YMM2)+4(XMM3)+1(XMM4)
        layout = plan_layout(45, IsaLevel.AVX512)
        assert [p.lanes for p in layout.pieces] == [16, 16, 8, 4, 1]
        assert [p.offset for p in layout.pieces] == [0, 16, 32, 40, 44]
        assert [p.register.name for p in layout.pieces] == [
            "zmm0", "zmm1", "ymm2", "xmm3", "xmm4"]
        assert layout.broadcast.name == "zmm31"

    def test_d16_single_zmm(self):
        layout = plan_layout(16, IsaLevel.AVX512)
        assert [p.lanes for p in layout.pieces] == [16]

    def test_d32_two_zmm(self):
        layout = plan_layout(32, IsaLevel.AVX512)
        assert [p.lanes for p in layout.pieces] == [16, 16]

    def test_avx2_maxes_at_8(self):
        layout = plan_layout(20, IsaLevel.AVX2)
        assert [p.lanes for p in layout.pieces] == [8, 8, 4]
        assert layout.broadcast.name.startswith("ymm")

    def test_scalar_isa_one_lane_each(self):
        layout = plan_layout(8, IsaLevel.SCALAR)
        assert [p.lanes for p in layout.pieces] == [1] * 8
        # paper Table II: accumulators in XMM0-7, broadcast in XMM31
        assert [p.register.name for p in layout.pieces] == [
            f"xmm{i}" for i in range(8)]
        assert layout.broadcast.name == "xmm31"

    def test_rejects_nonpositive(self):
        with pytest.raises(CodegenError):
            plan_layout(0)

    def test_rejects_over_capacity(self):
        with pytest.raises(CodegenError):
            plan_layout(16 * 31, IsaLevel.AVX512)


class TestTiling:
    def test_single_tile_when_fits(self):
        tiles = tile_columns(45, IsaLevel.AVX512)
        assert len(tiles) == 1
        assert tiles[0].start == 0

    def test_wide_d_splits(self):
        tiles = tile_columns(16 * 40, IsaLevel.AVX512)
        assert len(tiles) >= 2
        # contiguous, covering
        cursor = 0
        for tile in tiles:
            assert tile.start == cursor
            cursor += tile.layout.d
        assert cursor == 16 * 40

    def test_scalar_isa_tiles(self):
        tiles = tile_columns(64, IsaLevel.SCALAR)
        assert sum(t.layout.d for t in tiles) == 64
        capacity = accumulator_capacity(isa_spec(IsaLevel.SCALAR))
        for tile in tiles:
            assert tile.layout.num_accumulators <= capacity


@settings(max_examples=200, deadline=None)
@given(
    d=st.integers(1, 2000),
    isa=st.sampled_from([IsaLevel.SCALAR, IsaLevel.SSE2, IsaLevel.AVX2,
                         IsaLevel.AVX512]),
)
def test_property_layout_invariants(d, isa):
    spec = isa_spec(isa)
    tiles = tile_columns(d, isa)
    covered = 0
    for tile in tiles:
        layout = tile.layout
        assert tile.start == covered
        # pieces cover the tile exactly, in offset order, no overlap
        offset = 0
        for piece in layout.pieces:
            assert piece.offset == offset
            offset += piece.lanes
        assert offset == layout.d
        # register budget respected, broadcast register untouched
        assert layout.num_accumulators <= spec.num_vector_regs - 2
        codes = [p.code for p in layout.pieces]
        assert len(set(codes)) == len(codes)
        assert layout.broadcast_code not in codes
        assert layout.scratch_code not in codes
        # greedy decomposition is minimal ("fewest registers", §IV-D.1):
        # verify against brute-force DP for small tile widths
        if layout.d <= 128:
            widths = [w // 32 for w in spec.register_widths()] + [1]
            best = [0] + [10**9] * layout.d
            for target in range(1, layout.d + 1):
                for width in widths:
                    if width <= target:
                        best[target] = min(best[target], best[target - width] + 1)
            assert len(decompose(layout.d, spec)) == best[layout.d]
        covered += layout.d
    assert covered == d
