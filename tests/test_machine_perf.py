"""Tests for PerfReport and Counters arithmetic."""

import pytest

from repro.machine.counters import Counters
from repro.machine.perf import PerfReport


def sample(cycles: float, loads: int = 100) -> Counters:
    counters = Counters()
    counters.cycles = cycles
    counters.memory_loads = loads
    counters.instructions = 10 * loads
    return counters


class TestCounters:
    def test_merge_sums_events_maxes_cycles(self):
        a = sample(100.0, loads=10)
        b = sample(250.0, loads=20)
        a.merge(b)
        assert a.memory_loads == 30
        assert a.cycles == 250.0

    def test_scaled(self):
        scaled = sample(100.0, loads=10).scaled(0.5)
        assert scaled.memory_loads == 5
        assert scaled.cycles == 50.0

    def test_seconds(self):
        counters = sample(3.7e9)
        assert counters.seconds(ghz=3.7) == pytest.approx(1.0)

    def test_as_dict_roundtrip(self):
        data = sample(5.0).as_dict()
        assert data["cycles"] == 5.0
        assert "branch_misses" in data

    def test_str_compact(self):
        assert "loads=" in str(sample(1.0))


class TestPerfReport:
    def test_speedup(self):
        report = PerfReport("t")
        report.add("slow", sample(1000.0))
        report.add("fast", sample(250.0))
        assert report.speedup("slow", "fast") == pytest.approx(4.0)

    def test_speedup_zero_contender(self):
        report = PerfReport()
        report.add("a", sample(10.0))
        report.add("b", sample(0.0))
        with pytest.raises(ZeroDivisionError):
            report.speedup("a", "b")

    def test_ratio(self):
        report = PerfReport()
        report.add("base", sample(1.0, loads=300))
        report.add("jit", sample(1.0, loads=100))
        assert report.ratio("memory_loads", "base", "jit") == pytest.approx(3.0)

    def test_ratio_infinite(self):
        report = PerfReport()
        report.add("base", sample(1.0, loads=300))
        zero = Counters()
        report.add("none", zero)
        assert report.ratio("memory_loads", "base", "none") == float("inf")

    def test_table_renders_all_runs(self):
        report = PerfReport("title")
        report.add("one", sample(10.0))
        report.add("two", sample(20.0))
        text = report.table()
        assert "title" in text
        assert "one" in text and "two" in text
        assert "seconds" in text
