"""Tests for immediate and memory operands."""

import pytest

from repro.errors import AssemblyError
from repro.isa.operands import Imm, Mem
from repro.isa.registers import regs, zmm


class TestImm:
    def test_natural_width_8(self):
        assert Imm(5).width == 8
        assert Imm(-128).width == 8

    def test_natural_width_32(self):
        assert Imm(128).width == 32
        assert Imm(-(1 << 20)).width == 32

    def test_natural_width_64(self):
        assert Imm(1 << 40).width == 64

    def test_explicit_width_kept(self):
        assert Imm(5, 32).width == 32

    def test_out_of_range(self):
        with pytest.raises(AssemblyError):
            Imm(1 << 64)

    def test_invalid_width(self):
        with pytest.raises(AssemblyError):
            Imm(5, 16)


class TestMem:
    def test_base_only(self):
        mem = Mem(regs.rax, size=8)
        assert mem.registers() == (regs.rax,)
        assert not mem.is_gather

    def test_full_form(self):
        mem = Mem(regs.rax, regs.r10, 4, 16, size=4)
        assert mem.registers() == (regs.rax, regs.r10)

    def test_vector_index_is_gather(self):
        mem = Mem(regs.rax, zmm(2), 4, 0, size=4)
        assert mem.is_gather

    def test_requires_some_register(self):
        with pytest.raises(AssemblyError):
            Mem(None)

    def test_rejects_non_gpr_base(self):
        with pytest.raises(AssemblyError):
            Mem(zmm(0))

    def test_rejects_bad_scale(self):
        with pytest.raises(AssemblyError):
            Mem(regs.rax, regs.rbx, 3)

    def test_rejects_bad_size(self):
        with pytest.raises(AssemblyError):
            Mem(regs.rax, size=7)

    def test_rejects_wide_disp(self):
        with pytest.raises(AssemblyError):
            Mem(regs.rax, disp=1 << 40)

    def test_repr_readable(self):
        text = repr(Mem(regs.rax, regs.r10, 4, 8, size=4))
        assert "rax" in text and "r10*4" in text
