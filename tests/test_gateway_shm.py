"""Tests for the shared-memory slot ring."""

import numpy as np
import pytest

from repro.serve.gateway.shm import ShmRing, set_attach_untrack


@pytest.fixture(autouse=True)
def _same_process_attach():
    """Attaches in these tests happen in the owner's own process, which
    shares its resource tracker by definition — untracking there would
    strip the owner's registration (and make its unlink noisy)."""
    set_attach_untrack(False)
    yield
    set_attach_untrack(True)


class TestShmRing:
    def test_acquire_release_cycle(self):
        with ShmRing(slot_bytes=256, slots=2) as ring:
            first = ring.acquire()
            second = ring.acquire()
            assert {first, second} == {0, 1}
            assert ring.acquire() is None          # exhausted, not queued
            ring.release(first)
            assert ring.acquire() == first

    def test_exhaustion_counts_rejections(self):
        with ShmRing(slot_bytes=64, slots=1) as ring:
            ring.acquire()
            ring.acquire()
            ring.acquire()
            stats = ring.stats()
            assert stats.rejections == 2
            assert stats.in_use == 1
            assert stats.peak_in_use == 1
            assert "2 rejected" in stats.render()

    def test_double_release_is_a_bug(self):
        with ShmRing(slot_bytes=64, slots=2) as ring:
            slot = ring.acquire()
            ring.release(slot)
            with pytest.raises(ValueError, match="twice"):
                ring.release(slot)

    def test_release_out_of_range(self):
        with ShmRing(slot_bytes=64, slots=2) as ring:
            with pytest.raises(ValueError, match="range"):
                ring.release(5)

    def test_write_read_round_trip(self):
        with ShmRing(slot_bytes=1024, slots=4) as ring:
            data = np.arange(64, dtype=np.float32)
            nbytes = ring.write(3, data)
            assert nbytes == data.nbytes
            out = np.frombuffer(ring.read(3, nbytes), dtype=np.float32)
            np.testing.assert_array_equal(out, data)

    def test_slots_are_disjoint(self):
        with ShmRing(slot_bytes=16, slots=2) as ring:
            ring.write(0, b"a" * 16)
            ring.write(1, b"b" * 16)
            assert ring.read(0, 16) == b"a" * 16
            assert ring.read(1, 16) == b"b" * 16

    def test_oversized_write_rejected(self):
        with ShmRing(slot_bytes=8, slots=1) as ring:
            with pytest.raises(ValueError, match="exceed"):
                ring.write(0, b"x" * 9)

    def test_attach_sees_owner_writes(self):
        with ShmRing(slot_bytes=128, slots=2) as owner:
            attached = ShmRing.attach(owner.name, 128, 2)
            try:
                owner.write(1, b"hello")
                assert attached.read(1, 5) == b"hello"
                attached.write(1, b"world")
                assert owner.read(1, 5) == b"world"
            finally:
                attached.close()

    def test_attach_size_mismatch_rejected(self):
        with ShmRing(slot_bytes=64, slots=2) as owner:
            with pytest.raises(ValueError, match="needs"):
                ShmRing.attach(owner.name, 64, 100)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError, match="slot_bytes"):
            ShmRing(slot_bytes=0, slots=1)
        with pytest.raises(ValueError, match="slots"):
            ShmRing(slot_bytes=8, slots=0)

    def test_close_is_idempotent(self):
        ring = ShmRing(slot_bytes=64, slots=1)
        ring.close()
        ring.close()
