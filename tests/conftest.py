"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import CsrMatrix


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_csr(
    rng: np.random.Generator,
    nrows: int,
    ncols: int,
    density: float = 0.2,
    name: str = "random",
) -> CsrMatrix:
    """Build a random CSR matrix with about ``density`` fill."""
    mask = rng.random((nrows, ncols)) < density
    dense = np.where(mask, rng.standard_normal((nrows, ncols)), 0.0)
    return CsrMatrix.from_dense(dense.astype(np.float32), name=name)


@pytest.fixture
def small_csr(rng: np.random.Generator) -> CsrMatrix:
    return random_csr(rng, 40, 30, density=0.15)
