"""Tests for branch predictors."""

import pytest

from repro.machine.branch import GShare, TwoBit, make_predictor


@pytest.mark.parametrize("cls", [TwoBit, GShare])
class TestCommonBehaviour:
    def test_learns_always_taken(self, cls):
        predictor = cls()
        for _ in range(4):
            predictor.update(100, True)
        assert predictor.predict(100) is True

    def test_learns_always_not_taken(self, cls):
        predictor = cls()
        for _ in range(4):
            predictor.update(100, False)
        assert predictor.predict(100) is False

    def test_loop_branch_misses_once_per_trip(self, cls):
        # A loop back-edge taken N-1 times then falling through: a warmed
        # 2-bit counter mispredicts only the final not-taken outcome.
        predictor = cls()
        for _ in range(8):
            predictor.update(5, True)  # warm up
        misses = 0
        for trip in range(10):
            taken = trip < 9
            if not predictor.update(5, taken):
                misses += 1
        assert misses == 1

    def test_update_returns_correctness(self, cls):
        predictor = cls()
        for _ in range(4):
            predictor.update(3, True)
        assert predictor.update(3, True) is True
        assert predictor.update(3, False) is False

    def test_reset(self, cls):
        predictor = cls()
        for _ in range(8):
            predictor.update(7, False)
        predictor.reset()
        assert predictor.predict(7) is True  # back to weakly-taken default


class TestGShareSpecific:
    def test_history_distinguishes_patterns(self):
        # Alternating T/N/T/N at one PC: gshare with history learns it
        # perfectly after warmup, a plain two-bit counter cannot.
        gshare = GShare(history_bits=4)
        for i in range(64):
            gshare.update(9, i % 2 == 0)
        misses = 0
        for i in range(64, 128):
            if not gshare.update(9, i % 2 == 0):
                misses += 1
        assert misses == 0

    def test_two_bit_cannot_learn_alternation(self):
        predictor = TwoBit()
        for i in range(64):
            predictor.update(9, i % 2 == 0)
        misses = 0
        for i in range(64, 128):
            if not predictor.update(9, i % 2 == 0):
                misses += 1
        assert misses > 16


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_predictor("two_bit"), TwoBit)
        assert isinstance(make_predictor("gshare"), GShare)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor("oracle")
