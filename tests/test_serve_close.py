"""Tests for SpmmService lifecycle: close(), draining, deregistration."""

import numpy as np
import pytest

from repro.errors import ServiceClosed
from repro.obs.metrics import get_registry
from repro.serve import SpmmService
from tests.conftest import random_csr


class TestClose:
    def test_close_is_idempotent_and_observable(self, rng):
        service = SpmmService(threads=2, split="row", backend="native")
        assert not service.closed
        service.close()
        assert service.closed
        service.close()                         # second close is a no-op

    def test_context_manager_closes(self, rng):
        with SpmmService(threads=2, split="row",
                         backend="native") as service:
            matrix = random_csr(rng, 20, 16, density=0.3)
            handle = service.register(matrix)
            y = service.multiply(handle,
                                 np.ones((16, 4), dtype=np.float32))
            assert y.shape == (20, 4)
        assert service.closed

    def test_requests_after_close_raise_typed(self, rng):
        service = SpmmService(threads=2, split="row", backend="native")
        matrix = random_csr(rng, 20, 16, density=0.3)
        handle = service.register(matrix)
        service.multiply(handle, np.ones((16, 2), dtype=np.float32))
        service.close()
        with pytest.raises(ServiceClosed):
            service.multiply(handle, np.ones((16, 2), dtype=np.float32))
        with pytest.raises(ServiceClosed):
            service.register(random_csr(rng, 10, 10, density=0.3))

    def test_close_retires_workspaces_and_pool(self, rng):
        service = SpmmService(threads=2, split="row", backend="native",
                              max_batch=4)
        matrix = random_csr(rng, 24, 20, density=0.3)
        handle = service.register(matrix)
        for d in (2, 4, 8):
            service.multiply(handle,
                             np.ones((20, d), dtype=np.float32))
        assert service._live_workspaces() > 0
        service.close()
        assert service._live_workspaces() == 0
        assert service.pool.retained_bytes == 0

    def test_close_deregisters_metrics_collector(self, rng):
        service = SpmmService(threads=2, split="row", backend="native",
                              obs_label="closing-svc")
        matrix = random_csr(rng, 20, 16, density=0.3)
        handle = service.register(matrix)
        service.multiply(handle, np.ones((16, 2), dtype=np.float32))

        def service_samples():
            return [sample for sample in get_registry().snapshot().samples
                    if ("service", "closing-svc") in sample.labels]

        assert service_samples(), "live service must export samples"
        service.close()
        assert not service_samples(), (
            "closed service must not linger in the metrics registry")

    def test_close_drains_cleanly_under_traffic(self, rng):
        import threading

        service = SpmmService(threads=2, split="row", backend="native",
                              max_batch=4, flush_us=200.0)
        matrix = random_csr(rng, 30, 24, density=0.3)
        handle = service.register(matrix)
        x = np.ones((24, 4), dtype=np.float32)
        service.multiply(handle, x)             # warm
        stop = threading.Event()
        errors = []

        def traffic():
            while not stop.is_set():
                try:
                    service.multiply(handle, x)
                except ServiceClosed:
                    return
                except BaseException as error:  # noqa: BLE001 - asserted
                    errors.append(error)
                    return

        threads = [threading.Thread(target=traffic) for _ in range(3)]
        for thread in threads:
            thread.start()
        service.close(drain_seconds=10.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "traffic thread hung past close"
        assert not errors, errors


class TestSnapshotWorkerLabels:
    def test_metric_samples_merge_extra_labels(self, rng):
        """Per-worker snapshots aggregated at a gateway must carry the
        worker label on every sample, merged with the service label
        (the old concatenation produced colliding label tuples)."""
        with SpmmService(threads=2, split="row", backend="native",
                         obs_label="lbl-svc") as service:
            matrix = random_csr(rng, 20, 16, density=0.3)
            handle = service.register(matrix)
            service.multiply(handle, np.ones((16, 2), dtype=np.float32))
            snapshot = service.snapshot()
        for worker in ("0", "1"):
            samples = snapshot.metric_samples(service="agg",
                                              worker=worker)
            assert samples
            for sample in samples:
                keys = [key for key, _value in sample.labels]
                assert keys == sorted(keys), (
                    f"{sample.name}: labels not merged/sorted: "
                    f"{sample.labels}")
                assert len(keys) == len(set(keys)), (
                    f"{sample.name}: duplicate label keys: "
                    f"{sample.labels}")
                assert ("worker", worker) in sample.labels
                assert ("service", "agg") in sample.labels

    def test_distinct_worker_labels_do_not_collide(self, rng):
        with SpmmService(threads=2, split="row",
                         backend="native") as service:
            matrix = random_csr(rng, 20, 16, density=0.3)
            handle = service.register(matrix)
            service.multiply(handle, np.ones((16, 2), dtype=np.float32))
            snapshot = service.snapshot()
        zero = {(s.name, s.labels)
                for s in snapshot.metric_samples(service="s", worker="0")}
        one = {(s.name, s.labels)
               for s in snapshot.metric_samples(service="s", worker="1")}
        assert not (zero & one), "same series key from two workers"
