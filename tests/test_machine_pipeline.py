"""Tests for the scoreboard pipeline model."""

from repro.isa.instructions import Instruction
from repro.isa.operands import Mem
from repro.isa.registers import regs, zmm
from repro.machine.pipeline import PipelineModel, PipelineSpec


def fma(dst, a, b):
    return Instruction("vfmadd231ps", (zmm(dst), zmm(a), zmm(b)))


class TestDependencyChains:
    def test_serial_fma_chain_is_latency_bound(self):
        # 8 FMAs all accumulating into zmm0: each waits for the previous.
        model = PipelineModel()
        for _ in range(8):
            model.issue(fma(0, 1, 2))
        serial = model.cycles

        model2 = PipelineModel()
        for i in range(8):
            model2.issue(fma(i, 8, 9))  # independent accumulators
        parallel = model2.cycles
        # CCM's whole point (paper §IV-C): independent accumulators overlap.
        assert serial > parallel * 2

    def test_fma_latency_visible(self):
        spec = PipelineSpec()
        model = PipelineModel(spec)
        model.issue(fma(0, 1, 2))
        model.issue(fma(0, 1, 2))  # depends on previous
        fma_latency = dict((k, lat) for k, lat, _ in spec.kind_costs)[
            fma(0, 1, 2).kind]
        assert model.cycles >= 2 * fma_latency

    def test_zero_idiom_breaks_chain(self):
        model = PipelineModel()
        model.issue(fma(0, 1, 2))
        model.issue(Instruction("vxorps", (zmm(0), zmm(0), zmm(0))))
        zeroing_done = model.cycles
        model2 = PipelineModel()
        model2.issue(fma(0, 1, 2))
        model2.issue(Instruction("vaddps", (zmm(0), zmm(0), zmm(3))))
        dependent_done = model2.cycles
        assert zeroing_done < dependent_done


class TestPorts:
    def test_port_contention_serializes(self):
        # Only 2 vector pipes: 8 independent FMAs take >= 4 issue slots.
        model = PipelineModel()
        for i in range(8):
            model.issue(fma(i, 10, 11))
        assert model.cycles >= 4.0

    def test_issue_width_bounds_throughput(self):
        spec = PipelineSpec(issue_width=4)
        model = PipelineModel(spec)
        for _ in range(100):
            model.issue(Instruction("nop"))
        assert model.cycles >= 100 / 4


class TestMemory:
    def test_load_latency_by_level(self):
        insn = Instruction("mov", (regs.rax, Mem(regs.rbx, size=8)))
        use = Instruction("add", (regs.rcx, regs.rax))
        results = {}
        for level in ("l1", "l2", "mem"):
            model = PipelineModel()
            model.issue(insn, load_refs=((level, 100),))
            model.issue(use)
            results[level] = model.cycles
        assert results["l1"] < results["l2"] < results["mem"]

    def test_stores_do_not_stall(self):
        model = PipelineModel()
        store = Instruction("mov", (Mem(regs.rbx, size=8), regs.rax))
        for i in range(10):
            model.issue(store, store_refs=(("l1", i),))
        # bound by store port (1/cycle), not by any latency chain
        assert model.cycles <= 16


class TestBranches:
    def test_mispredict_costs_flush(self):
        spec = PipelineSpec(branch_miss_penalty=16.0)
        correct = PipelineModel(spec)
        correct.issue(Instruction("jge", ("x",)), mispredicted=False)
        correct.issue(Instruction("nop"))
        wrong = PipelineModel(spec)
        wrong.issue(Instruction("jge", ("x",)), mispredicted=True)
        wrong.issue(Instruction("nop"))
        assert wrong.cycles >= correct.cycles + spec.branch_miss_penalty

    def test_advance_stalls(self):
        model = PipelineModel()
        model.issue(Instruction("nop"))
        before = model.cycles
        model.advance(50.0)
        assert model.cycles >= before + 50.0


class TestGather:
    def test_gather_occupies_load_pipes(self):
        from repro.isa.operands import Mem as M
        gather = Instruction(
            "vgatherdps", (zmm(0), M(regs.rax, zmm(1), 4, 0, size=4))
        )
        model = PipelineModel()
        model.issue(gather, load_refs=tuple(("l1", i) for i in range(16)), gather_lanes=16)
        single = PipelineModel()
        single.issue(
            Instruction("vmovups", (zmm(0), M(regs.rax, size=64))),
            load_refs=(("l1", 0),),
        )
        assert model.cycles > single.cycles
