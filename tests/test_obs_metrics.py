"""repro.obs.metrics: instruments, collectors, snapshots."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry, Sample, labels_key


@pytest.fixture
def registry():
    return MetricsRegistry()


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self, registry):
        counter = registry.counter("req_total", service="a")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self, registry):
        gauge = registry.gauge("live")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_get_or_create_returns_same_instrument(self, registry):
        assert registry.counter("x", a=1) is registry.counter("x", a=1)
        assert registry.counter("x", a=1) is not registry.counter("x", a=2)

    def test_kind_conflict_is_an_error(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.gauge("x", other="labels")

    def test_histogram_buckets_are_cumulative(self, registry):
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        samples = {(s.name, s.labels): s.value for s in hist.samples()}
        assert samples[("lat_bucket", (("le", "0.1"),))] == 1
        assert samples[("lat_bucket", (("le", "1.0"),))] == 3
        assert samples[("lat_bucket", (("le", "10.0"),))] == 4
        assert samples[("lat_bucket", (("le", "+Inf"),))] == 5
        assert samples[("lat_count", ())] == 5
        assert samples[("lat_sum", ())] == pytest.approx(56.05)

    def test_histogram_boundary_lands_in_its_bucket(self, registry):
        hist = registry.histogram("edge", buckets=(1.0, 2.0))
        hist.observe(1.0)   # le="1.0" is inclusive
        samples = {(s.name, s.labels): s.value for s in hist.samples()}
        assert samples[("edge_bucket", (("le", "1.0"),))] == 1

    def test_histogram_rejects_unsorted_buckets(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())

    def test_concurrent_increments_lose_nothing(self, registry):
        counter = registry.counter("contended_total")
        threads, per_thread = 8, 2000
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        workers = [threading.Thread(target=worker) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert counter.value == threads * per_thread


# ----------------------------------------------------------------------
# Collectors + snapshots
# ----------------------------------------------------------------------
class TestSnapshot:
    def test_snapshot_merges_instruments_and_collectors(self, registry):
        registry.counter("native_total").inc(3)
        registry.register_collector(
            lambda: [Sample("derived", (("k", "v"),), 7.0, "gauge")])
        snap = registry.snapshot()
        assert snap.value("native_total") == 3
        assert snap.value("derived", k="v") == 7.0

    def test_samples_are_sorted_and_immutable(self, registry):
        registry.counter("b_total").inc()
        registry.counter("a_total").inc()
        snap = registry.snapshot()
        names = [s.name for s in snap.samples]
        assert names == sorted(names)
        assert isinstance(snap.samples, tuple)

    def test_value_matches_label_superset_and_raises_on_miss(
            self, registry):
        registry.counter("req_total", service="a", backend="native").inc()
        snap = registry.snapshot()
        assert snap.value("req_total", service="a") == 1
        with pytest.raises(KeyError):
            snap.value("req_total", service="zzz")
        with pytest.raises(KeyError):
            snap.value("missing")

    def test_dead_collector_is_pruned(self, registry):
        def collect():
            return [Sample("ghost", (), 1.0, "gauge")]

        collect.dead = False
        registry.register_collector(collect)
        assert registry.snapshot().value("ghost") == 1.0
        collect.dead = True
        assert "ghost" not in registry.snapshot().names()
        # pruned for good, not just skipped
        collect.dead = False
        assert "ghost" not in registry.snapshot().names()

    def test_unregister_collector(self, registry):
        collect = registry.register_collector(
            lambda: [Sample("tmp", (), 1.0, "gauge")])
        assert registry.unregister_collector(collect)
        assert not registry.unregister_collector(collect)
        assert "tmp" not in registry.snapshot().names()

    def test_filter_and_names(self, registry):
        registry.counter("x_total", a=1).inc()
        registry.counter("x_total", a=2).inc()
        snap = registry.snapshot()
        assert len(snap.filter("x_total")) == 2
        assert snap.names() == ["x_total"]


def test_labels_key_is_order_insensitive():
    assert labels_key({"b": 2, "a": 1}) == labels_key({"a": 1, "b": 2})
    assert labels_key({"a": 1}) == (("a", "1"),)
