"""Tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import Assembler
from repro.isa.operands import Imm
from repro.isa.registers import regs


def tiny_loop() -> Assembler:
    asm = Assembler("tiny")
    asm.mov(regs.rcx, 0)
    asm.label("loop")
    asm.cmp(regs.rcx, 4)
    asm.jge("done")
    asm.inc(regs.rcx)
    asm.jmp("loop")
    asm.label("done")
    asm.ret()
    return asm


class TestEmission:
    def test_integer_promotion(self):
        asm = Assembler()
        insn = asm.mov(regs.rax, 7)
        assert isinstance(insn.operands[1], Imm)
        assert insn.operands[1].value == 7

    def test_unknown_mnemonic_attribute(self):
        asm = Assembler()
        with pytest.raises(AttributeError):
            asm.frobnicate(regs.rax)

    def test_emit_returns_instruction(self):
        asm = Assembler()
        insn = asm.emit("nop")
        assert insn.mnemonic == "nop"

    def test_len_counts_instructions_not_labels(self):
        asm = tiny_loop()
        assert len(asm) == 6


class TestLabels:
    def test_resolution(self):
        program = tiny_loop().finish()
        assert program.target_index("loop") == 1
        assert program.target_index("done") == 5

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_undefined_branch_target_rejected(self):
        asm = Assembler()
        asm.jmp("nowhere")
        with pytest.raises(AssemblyError):
            asm.finish()

    def test_label_at_end(self):
        asm = Assembler()
        asm.jmp("end")
        asm.label("end")
        program = asm.finish()
        assert program.target_index("end") == 1

    def test_fresh_labels_unique(self):
        asm = Assembler()
        names = {asm.fresh_label() for _ in range(100)}
        assert len(names) == 100

    def test_unknown_label_lookup(self):
        program = tiny_loop().finish()
        with pytest.raises(AssemblyError):
            program.target_index("nope")


class TestProgram:
    def test_listing_contains_labels_and_instructions(self):
        listing = tiny_loop().finish().listing()
        assert ".loop:" in listing
        assert ".done:" in listing
        assert "inc" in listing
        assert listing.splitlines()[0] == "tiny:"

    def test_static_counts(self):
        counts = tiny_loop().finish().static_counts()
        assert counts["mov"] == 1
        assert counts["jmp"] == 1

    def test_encode_cached(self):
        program = tiny_loop().finish()
        assert program.encode() is program.encode()

    def test_code_size_positive(self):
        assert tiny_loop().finish().code_size() > 0
