"""Resilience tests: deadlines, watchdog, breaker, client retry, drain.

Workers are fork-started throughout (same trade-off as the e2e file:
spawn costs seconds per worker).  Hang thresholds here are hundreds of
milliseconds — far below the 60 s production default — so a hung worker
is declared within a test's patience; the native backend serves real
requests in microseconds, so legitimate traffic never trips them.
"""

import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.api.config import ExecutionConfig
from repro.errors import (DeadlineExceeded, GatewayDisconnected,
                          GatewayOverloaded, WorkerCrashed, WorkerHung)
from repro.faults import FaultPlan, FaultRule
from repro.serve.gateway import Gateway
from repro.serve.gateway import protocol as proto
from repro.sparse import spmm_reference
from tests.conftest import random_csr


def _wait_for(predicate, timeout=20.0, message="condition"):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


class TestDeadlinePropagation:
    def test_expired_deadline_rejected_at_admission(self, rng):
        """An already-expired request fails typed before any work —
        no slot acquired, no worker dispatch."""
        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork") as gateway:
            with gateway.connect() as client:
                matrix = random_csr(rng, 32, 24, density=0.3, name="dl")
                handle = client.register(matrix, "dl")
                x = rng.random((24, 4)).astype(np.float32)
                client.multiply(handle, x)          # warm
                baseline = gateway.shm_stats().acquires
                # drive the coroutine directly with a past deadline:
                # the wire only carries relative budgets >= 1ms, but
                # queue wait can expire one between header and admission
                payload = proto.encode_multiply(handle, x, "default")
                with pytest.raises(DeadlineExceeded, match="admission"):
                    gateway._run(gateway._op_multiply(
                        payload, deadline=time.monotonic() - 0.01))
                assert gateway.shm_stats().acquires == baseline

    def test_generous_deadline_served_normally(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=1,
                                 deadline_ms=30_000.0)
        with Gateway(config, mp_start="fork") as gateway:
            with gateway.connect() as client:
                matrix = random_csr(rng, 48, 32, density=0.25, name="gd")
                handle = client.register(matrix, "gd")
                x = rng.random((32, 6)).astype(np.float32)
                y = client.multiply(handle, x)
                assert np.allclose(y, spmm_reference(matrix, x), atol=1e-4)

    def test_deadline_enforced_around_slow_work(self, rng):
        """A tiny budget cannot survive cold bind/codegen plus a
        simulated profile: the worker refuses typed, never late-ok."""
        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork") as gateway:
            with gateway.connect() as client:
                matrix = random_csr(rng, 256, 192, density=0.25,
                                    name="slow")
                handle = client.register(matrix, "slow")
                x = rng.random((192, 8)).astype(np.float32)
                t0 = time.perf_counter()
                with pytest.raises(DeadlineExceeded):
                    client.profile(handle, x, backend="sim", deadline_ms=5)
                # grace: the typed failure arrives promptly, not after
                # the full simulated run completed anyway
                assert time.perf_counter() - t0 < 10.0

    def test_service_config_rejects_bad_deadline_fields(self):
        from repro.errors import ShapeError

        for bad in ({"deadline_ms": 0}, {"deadline_ms": -5.0},
                    {"hang_threshold_ms": 0}, {"hang_threshold_ms": -1},
                    {"max_retries": -1}, {"breaker_threshold": 0}):
            with pytest.raises(ShapeError):
                ExecutionConfig(**bad)


class TestHangSupervision:
    def test_hung_worker_killed_and_pool_recovers(self, rng):
        """A worker.hang fault trips the watchdog: the in-flight
        request fails fast with typed WorkerHung, the process is killed
        and respawned, and the pool serves correct bits again."""
        config = ExecutionConfig(split="row", backend="native", workers=1,
                                 hang_threshold_ms=300.0)
        with Gateway(config, mp_start="fork") as gateway:
            client = gateway.connect(max_retries=0)
            try:
                matrix = random_csr(rng, 64, 48, density=0.25, name="hang")
                handle = client.register(matrix, "hang")
                x = rng.random((48, 4)).astype(np.float32)
                reference = spmm_reference(matrix, x)
                client.multiply(handle, x)          # warm
                (victim_pid,) = gateway.worker_pids()
                gateway.set_fault_plan(FaultPlan(rules=(
                    FaultRule("worker.hang", hang_seconds=30.0),)))
                t0 = time.perf_counter()
                with pytest.raises(WorkerHung, match="hang threshold"):
                    client.multiply(handle, x)
                # fail-fast: threshold + watchdog tick, nowhere near
                # the 30s the worker would have slept
                assert time.perf_counter() - t0 < 5.0
                gateway.set_fault_plan(None)
                _wait_for(lambda: gateway.worker_pids() not in
                          ([], [victim_pid]),
                          message="hung worker respawned")
                deadline = time.perf_counter() + 30
                while True:
                    try:
                        y = client.multiply(handle, x)
                        break
                    except (WorkerCrashed, WorkerHung, GatewayOverloaded):
                        if time.perf_counter() > deadline:
                            raise
                        time.sleep(0.05)
                assert np.allclose(y, reference, atol=1e-4)
                assert gateway.worker_pids() != [victim_pid]
            finally:
                client.close()

    def test_hang_is_counted(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=1,
                                 hang_threshold_ms=250.0)
        with Gateway(config, mp_start="fork",
                     obs_label="gwhang") as gateway:
            client = gateway.connect(max_retries=0)
            try:
                matrix = random_csr(rng, 32, 24, density=0.3, name="hc")
                handle = client.register(matrix, "hc")
                x = rng.random((24, 2)).astype(np.float32)
                gateway.set_fault_plan(FaultPlan(rules=(
                    FaultRule("worker.hang", hang_seconds=30.0),)))
                with pytest.raises(WorkerHung):
                    client.multiply(handle, x)
                gateway.set_fault_plan(None)
                assert "gateway_worker_hangs_total" in gateway.stats_text()
            finally:
                client.close()


class TestCircuitBreaker:
    def test_breaker_opens_after_repeated_failures(self):
        from repro.serve.gateway.gateway import _Breaker

        breaker = _Breaker(threshold=3, cooldown=0.05)
        now = 100.0
        for _ in range(2):
            breaker.record_failure(now)
            assert breaker.state == _Breaker.CLOSED
        breaker.record_failure(now)
        assert breaker.state == _Breaker.OPEN
        assert not breaker.allow(now + 0.01)        # cooling down
        assert breaker.allow(now + 0.06)            # half-open probe
        assert breaker.state == _Breaker.HALF_OPEN
        assert not breaker.allow(now + 0.06)        # one probe at a time
        breaker.record_success()
        assert breaker.state == _Breaker.CLOSED
        assert breaker.allow(now + 0.07)

    def test_half_open_failure_reopens(self):
        from repro.serve.gateway.gateway import _Breaker

        breaker = _Breaker(threshold=1, cooldown=0.05)
        breaker.record_failure(0.0)
        assert breaker.state == _Breaker.OPEN
        assert breaker.allow(0.06)
        breaker.record_failure(0.07)
        assert breaker.state == _Breaker.OPEN
        assert not breaker.allow(0.08)
        assert breaker.allow(0.13)

    def test_all_breakers_open_rejects_typed(self, rng):
        """Repeated hangs open the single worker's breaker; the next
        request is refused with reason="breaker" instead of routing
        into a known-bad slot."""
        config = ExecutionConfig(split="row", backend="native", workers=1,
                                 hang_threshold_ms=250.0,
                                 breaker_threshold=1)
        with Gateway(config, mp_start="fork",
                     breaker_cooldown=60.0) as gateway:
            client = gateway.connect(max_retries=0)
            try:
                matrix = random_csr(rng, 32, 24, density=0.3, name="brk")
                handle = client.register(matrix, "brk")
                x = rng.random((24, 2)).astype(np.float32)
                client.multiply(handle, x)
                gateway.set_fault_plan(FaultPlan(rules=(
                    FaultRule("worker.hang", hang_seconds=30.0),)))
                with pytest.raises(WorkerHung):
                    client.multiply(handle, x)
                gateway.set_fault_plan(None)
                # threshold 1 + 60s cooldown: the slot is now open
                assert gateway.breaker_states() == [1]
                # wait out the respawn so the rejection is the
                # breaker's (not a no-live-workers WorkerCrashed)
                _wait_for(lambda: gateway.worker_pids(),
                          message="replacement worker installed")
                with pytest.raises(GatewayOverloaded) as excinfo:
                    client.multiply(handle, x)
                assert excinfo.value.reason == "breaker"
            finally:
                client.close()

    def test_breaker_closes_after_successful_probe(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=1,
                                 hang_threshold_ms=250.0,
                                 breaker_threshold=1)
        with Gateway(config, mp_start="fork",
                     breaker_cooldown=0.2) as gateway:
            client = gateway.connect(max_retries=0)
            try:
                matrix = random_csr(rng, 32, 24, density=0.3, name="probe")
                handle = client.register(matrix, "probe")
                x = rng.random((24, 2)).astype(np.float32)
                reference = spmm_reference(matrix, x)
                client.multiply(handle, x)
                gateway.set_fault_plan(FaultPlan(rules=(
                    FaultRule("worker.hang", hang_seconds=30.0),)))
                with pytest.raises(WorkerHung):
                    client.multiply(handle, x)
                gateway.set_fault_plan(None)
                # after cooldown a probe routes, succeeds on the
                # respawned worker, and closes the breaker
                deadline = time.perf_counter() + 30
                while True:
                    try:
                        y = client.multiply(handle, x)
                        break
                    except (GatewayOverloaded, WorkerCrashed, WorkerHung):
                        if time.perf_counter() > deadline:
                            raise
                        time.sleep(0.05)
                assert np.allclose(y, reference, atol=1e-4)
                _wait_for(lambda: gateway.breaker_states() == [0],
                          message="breaker closed after probe")
            finally:
                client.close()


class TestClientResilience:
    def test_reconnect_after_conn_drop(self, rng):
        """A conn.drop fault severs the socket mid-exchange; the client
        reconnects and the retried request succeeds bit-identically."""
        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork") as gateway:
            with gateway.connect() as client:
                matrix = random_csr(rng, 40, 32, density=0.25, name="rc")
                handle = client.register(matrix, "rc")
                x = rng.random((32, 4)).astype(np.float32)
                expected = client.multiply(handle, x)
                faults.install_plan(FaultPlan(rules=(
                    FaultRule("conn.drop"),)))
                y = client.multiply(handle, x)      # drops, reconnects
                assert client.retries_used >= 1
                assert y.tobytes() == expected.tobytes()

    def test_drop_without_retries_is_typed(self, rng):
        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork") as gateway:
            client = gateway.connect(max_retries=0)
            try:
                matrix = random_csr(rng, 24, 20, density=0.3, name="nd")
                handle = client.register(matrix, "nd")
                x = rng.random((20, 2)).astype(np.float32)
                faults.install_plan(FaultPlan(rules=(
                    FaultRule("conn.drop"),)))
                with pytest.raises(GatewayDisconnected):
                    client.multiply(handle, x)
                faults.clear_plan()
                # the connection heals lazily on the next request
                assert client.multiply(handle, x).shape == (24, 2)
            finally:
                client.close()

    def test_register_never_retries(self, rng):
        """A transport failure during register surfaces typed instead
        of risking a double registration."""
        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork") as gateway:
            with gateway.connect() as client:     # default retries on
                matrix = random_csr(rng, 24, 20, density=0.3, name="rr")
                faults.install_plan(FaultPlan(rules=(
                    FaultRule("conn.drop"),)))
                before = len(gateway.registered_handles())
                with pytest.raises(GatewayDisconnected):
                    client.register(matrix, "rr")
                faults.clear_plan()
                # conn.drop fires after send: the gateway registered it
                # once; the point is the client did not blindly replay
                assert len(gateway.registered_handles()) <= before + 1

    def test_retry_budgeted_by_deadline(self, rng):
        """With every attempt dropping the connection, a deadline stops
        the retry dance as DeadlineExceeded, not an endless loop."""
        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork") as gateway:
            client = gateway.connect(max_retries=50, backoff_base=0.02)
            try:
                matrix = random_csr(rng, 24, 20, density=0.3, name="bud")
                handle = client.register(matrix, "bud")
                x = rng.random((20, 2)).astype(np.float32)
                client.multiply(handle, x)
                faults.install_plan(FaultPlan(rules=(
                    FaultRule("conn.drop", max_fires=None),)))
                t0 = time.perf_counter()
                with pytest.raises(DeadlineExceeded):
                    client.multiply(handle, x, deadline_ms=400)
                assert time.perf_counter() - t0 < 5.0
            finally:
                faults.clear_plan()
                client.close()

    def test_backoff_jitter_is_seeded(self):
        from repro.serve.gateway.client import GatewayClient  # noqa: F401
        from random import Random

        # the jitter stream is plain seeded Random: two clients with
        # one seed share it (asserted at the source rather than racing
        # real sockets)
        assert ([Random(7).random() for _ in range(4)]
                == [Random(7).random() for _ in range(4)])


class TestCloseUnderLoad:
    def test_close_drains_without_spinning(self, rng):
        """close() returns promptly once in-flight traffic drains —
        parked on the drain condition, not a busy-wait."""
        config = ExecutionConfig(split="row", backend="native", workers=1)
        gateway = Gateway(config, mp_start="fork").start()
        client = gateway.connect()
        matrix = random_csr(rng, 256, 192, density=0.25, name="close")
        handle = client.register(matrix, "close")
        x = rng.random((192, 8)).astype(np.float32)
        client.multiply(handle, x)                  # warm codegen
        outcome = {}

        def slow_request():
            try:
                outcome["y"] = client.profile(handle, x, backend="sim")
            except BaseException as error:          # noqa: BLE001
                outcome["error"] = error

        thread = threading.Thread(target=slow_request)
        thread.start()
        _wait_for(lambda: gateway.inflight >= 1,
                  message="slow request admitted")
        t0 = time.perf_counter()
        gateway.close(drain_seconds=30.0)
        drained = time.perf_counter() - t0
        thread.join(timeout=30)
        client.close()
        assert not thread.is_alive()
        assert "y" in outcome, outcome.get("error")
        # the drain waited for the in-flight profile, then stopped
        # promptly: nowhere near the full 30s budget
        assert drained < 25.0
        assert gateway.inflight == 0

    def test_close_with_no_traffic_is_immediate(self):
        config = ExecutionConfig(split="row", backend="native", workers=1)
        gateway = Gateway(config, mp_start="fork").start()
        t0 = time.perf_counter()
        gateway.close(drain_seconds=10.0)
        assert time.perf_counter() - t0 < 5.0


class TestGatewayNeverHangsOnFuzz:
    def test_torn_frames_against_live_gateway(self, rng):
        """Mid-stream garbage and torn frames: the gateway answers
        typed errors or drops the connection — and keeps serving
        well-formed traffic on fresh connections."""
        import socket as socketlib

        config = ExecutionConfig(split="row", backend="native", workers=1)
        with Gateway(config, mp_start="fork") as gateway:
            with gateway.connect() as client:
                matrix = random_csr(rng, 32, 24, density=0.3, name="fuzz")
                handle = client.register(matrix, "fuzz")
                x = rng.random((24, 2)).astype(np.float32)
                reference = client.multiply(handle, x)
                good = proto.encode_frame(
                    proto.OP_MULTIPLY,
                    proto.encode_multiply(handle, x, "default"),
                    request_id=1)
                attacks = [
                    b"\x00" * 64,                     # pure garbage
                    good[:proto.HEADER.size - 3],     # torn header
                    good[:proto.HEADER.size + 5],     # torn payload
                    good[:len(good) // 2],            # half a frame
                    good + good[:11],                 # good then torn
                ]
                for blob in attacks:
                    sock = socketlib.create_connection(
                        gateway.address, timeout=5.0)
                    sock.settimeout(5.0)
                    try:
                        sock.sendall(blob)
                        sock.shutdown(socketlib.SHUT_WR)
                        # drain whatever the gateway answers (a typed
                        # error frame or clean EOF) — bounded by the
                        # socket timeout, so a gateway hang fails here
                        while True:
                            if not sock.recv(65536):
                                break
                    finally:
                        sock.close()
                # the gateway survived every attack: same connection
                # and fresh ones still serve correct bits
                assert (client.multiply(handle, x).tobytes()
                        == reference.tobytes())
                with gateway.connect() as fresh:
                    assert (fresh.multiply(handle, x).tobytes()
                            == reference.tobytes())
                assert gateway.shm_stats().in_use == 0
