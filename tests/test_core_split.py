"""Tests for row/nnz/merge-split partitioners (paper §IV-B, Fig. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.split import merge_split, nnz_split, partition, row_split
from repro.errors import ShapeError
from repro.sparse import CsrMatrix
from tests.conftest import random_csr


def skewed_matrix() -> CsrMatrix:
    """One monster row followed by many light rows (Fig. 6(a) pathology)."""
    dense = np.zeros((64, 64), dtype=np.float32)
    dense[0, :] = 1.0          # 64 nnz in row 0
    dense[1:, 0] = 1.0         # 1 nnz in each other row
    return CsrMatrix.from_dense(dense)


def _assert_covering(ranges, nrows):
    cursor = 0
    for r0, r1 in ranges:
        assert r0 == cursor
        assert r1 >= r0
        cursor = r1
    assert cursor == nrows


class TestRowSplit:
    def test_even_rows(self):
        mat = skewed_matrix()
        ranges = row_split(mat, 4)
        _assert_covering(ranges, 64)
        sizes = [r1 - r0 for r0, r1 in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ShapeError):
            row_split(skewed_matrix(), 0)

    def test_more_threads_than_rows(self):
        mat = CsrMatrix.from_dense(np.eye(3, dtype=np.float32))
        ranges = row_split(mat, 8)
        _assert_covering(ranges, 3)  # some ranges are empty, all covered


class TestNnzSplit:
    def test_balances_nonzeros(self):
        mat = skewed_matrix()
        ranges = nnz_split(mat, 2)
        _assert_covering(ranges, 64)
        nnz_per = [int(mat.row_ptr[r1] - mat.row_ptr[r0]) for r0, r1 in ranges]
        # the 64-nnz monster row goes alone-ish; totals within one row's nnz
        assert abs(nnz_per[0] - nnz_per[1]) <= 64

    def test_beats_row_split_on_skew(self):
        mat = skewed_matrix()

        def worst(ranges):
            return max(int(mat.row_ptr[r1] - mat.row_ptr[r0])
                       for r0, r1 in ranges)

        assert worst(nnz_split(mat, 4)) < worst(row_split(mat, 4))


class TestMergeSplit:
    def test_balances_rows_plus_nnz(self):
        mat = skewed_matrix()
        ranges = merge_split(mat, 4)
        _assert_covering(ranges, 64)
        work = [
            (r1 - r0) + int(mat.row_ptr[r1] - mat.row_ptr[r0])
            for r0, r1 in ranges
        ]
        total = mat.nrows + mat.nnz
        # each thread within one max-row of the ideal diagonal share
        assert max(work) <= total / 4 + mat.max_row_length() + 1

    def test_many_empty_rows(self):
        # nnz-split struggles on empty-row-heavy matrices; merge-split
        # still balances because rows count as work (paper §IV-B.1)
        dense = np.zeros((100, 4), dtype=np.float32)
        dense[:4, :] = 1.0
        mat = CsrMatrix.from_dense(dense)
        ranges = merge_split(mat, 4)
        _assert_covering(ranges, 100)
        rows_per = [r1 - r0 for r0, r1 in ranges]
        assert max(rows_per) < 100  # not everything on one thread


class TestDispatch:
    def test_partition_dispatches(self):
        mat = skewed_matrix()
        assert partition(mat, 2, "row") == row_split(mat, 2)
        assert partition(mat, 2, "nnz") == nnz_split(mat, 2)
        assert partition(mat, 2, "merge") == merge_split(mat, 2)

    def test_unknown_kind(self):
        with pytest.raises(ShapeError):
            partition(skewed_matrix(), 2, "zigzag")


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    threads=st.integers(1, 12),
    kind=st.sampled_from(["row", "nnz", "merge"]),
)
def test_property_partitions_cover_exactly(seed, threads, kind):
    rng = np.random.default_rng(seed)
    mat = random_csr(rng, int(rng.integers(1, 60)), 20, density=0.2)
    ranges = partition(mat, threads, kind)
    assert len(ranges) == threads
    _assert_covering(ranges, mat.nrows)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_property_merge_path_monotone(seed):
    """More threads never increase the per-thread merge-path work."""
    rng = np.random.default_rng(seed)
    mat = random_csr(rng, 50, 30, density=0.25)

    def worst(threads):
        return max(
            (r1 - r0) + int(mat.row_ptr[r1] - mat.row_ptr[r0])
            for r0, r1 in merge_split(mat, threads)
        )

    assert worst(8) <= worst(4) <= worst(2) <= worst(1)
