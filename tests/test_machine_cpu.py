"""Tests for the functional CPU interpreter."""

import numpy as np
import pytest

from repro.errors import ExecutionLimitExceeded
from repro.isa.assembler import Assembler
from repro.isa.operands import Imm, Mem
from repro.isa.registers import regs, xmm, ymm, zmm
from repro.machine import Cpu, CpuConfig, Memory


def run(builder, timing=False, init=None, memory=None):
    """Assemble, run, return (cpu, counters)."""
    asm = Assembler("t")
    builder(asm)
    asm.ret()
    cpu = Cpu(memory or Memory(), CpuConfig(timing=timing))
    counters = cpu.run(asm.finish(), init_gpr=init or {})
    return cpu, counters


class TestIntegerOps:
    def test_mov_imm_and_reg(self):
        cpu, _ = run(lambda a: (a.mov(regs.rax, 42), a.mov(regs.rbx, regs.rax)))
        assert cpu.get_gpr("rbx") == 42

    def test_add_sub(self):
        def body(a):
            a.mov(regs.rax, 10)
            a.add(regs.rax, 5)
            a.sub(regs.rax, 3)
        cpu, _ = run(body)
        assert cpu.get_gpr("rax") == 12

    def test_imul_forms(self):
        def body(a):
            a.mov(regs.rax, 6)
            a.mov(regs.rbx, 7)
            a.imul(regs.rax, regs.rbx)
            a.imul(regs.rcx, regs.rax, Imm(2))
        cpu, _ = run(body)
        assert cpu.get_gpr("rax") == 42
        assert cpu.get_gpr("rcx") == 84

    def test_lea(self):
        def body(a):
            a.mov(regs.rbx, 100)
            a.mov(regs.rcx, 5)
            a.lea(regs.rax, Mem(regs.rbx, regs.rcx, 8, 4, size=8))
        cpu, _ = run(body)
        assert cpu.get_gpr("rax") == 100 + 5 * 8 + 4

    def test_shifts(self):
        def body(a):
            a.mov(regs.rax, 3)
            a.shl(regs.rax, 4)
            a.mov(regs.rbx, 64)
            a.shr(regs.rbx, 3)
        cpu, _ = run(body)
        assert cpu.get_gpr("rax") == 48
        assert cpu.get_gpr("rbx") == 8

    def test_inc_dec_neg(self):
        def body(a):
            a.mov(regs.rax, 5)
            a.inc(regs.rax)
            a.dec(regs.rbx)
            a.mov(regs.rcx, 9)
            a.neg(regs.rcx)
        cpu, _ = run(body, init={"rbx": 2})
        assert cpu.get_gpr("rax") == 6
        assert cpu.get_gpr("rbx") == 1
        assert cpu.get_gpr("rcx") == -9

    def test_memory_round_trip(self):
        mem = Memory()
        base, _ = mem.map_zeros(64)

        def body(a):
            a.mov(regs.rbx, Imm(base, 64))
            a.mov(regs.rax, 12345)
            a.mov(Mem(regs.rbx, disp=8, size=8), regs.rax)
            a.mov(regs.rcx, Mem(regs.rbx, disp=8, size=8))
        cpu, _ = run(body, memory=mem)
        assert cpu.get_gpr("rcx") == 12345

    def test_32bit_load_zero_extends(self):
        mem = Memory()
        arr = np.array([7, 9], dtype=np.int32)
        base = mem.map_array(arr)

        def body(a):
            a.mov(regs.rbx, Imm(base, 64))
            a.mov(regs.rax, Mem(regs.rbx, disp=4, size=4))
        cpu, _ = run(body, memory=mem)
        assert cpu.get_gpr("rax") == 9


class TestControlFlow:
    def test_loop_counts(self):
        def body(a):
            a.mov(regs.rcx, 0)
            a.mov(regs.rax, 0)
            a.label("loop")
            a.cmp(regs.rcx, 10)
            a.jge("done")
            a.add(regs.rax, regs.rcx)
            a.inc(regs.rcx)
            a.jmp("loop")
            a.label("done")
        cpu, counters = run(body)
        assert cpu.get_gpr("rax") == sum(range(10))
        assert counters.cond_branches == 11

    @pytest.mark.parametrize("jcc,a,b,expect_taken", [
        ("je", 5, 5, True), ("je", 5, 6, False),
        ("jne", 5, 6, True), ("jne", 5, 5, False),
        ("jl", 4, 5, True), ("jl", 5, 4, False),
        ("jge", 5, 5, True), ("jge", 4, 5, False),
        ("jle", 5, 5, True), ("jg", 6, 5, True),
        ("jb", 4, 5, True), ("jae", 5, 5, True),
        ("jbe", 5, 5, True), ("ja", 6, 5, True),
    ])
    def test_condition_codes(self, jcc, a, b, expect_taken):
        def body(asm):
            asm.mov(regs.rax, a)
            asm.mov(regs.rbx, b)
            asm.mov(regs.rcx, 0)
            asm.cmp(regs.rax, regs.rbx)
            asm.emit(jcc, "taken")
            asm.jmp("end")
            asm.label("taken")
            asm.mov(regs.rcx, 1)
            asm.label("end")
        cpu, _ = run(body)
        assert cpu.get_gpr("rcx") == (1 if expect_taken else 0)

    def test_fuel_limit(self):
        asm = Assembler("inf")
        asm.label("x")
        asm.jmp("x")
        cpu = Cpu(Memory(), CpuConfig(timing=False))
        with pytest.raises(ExecutionLimitExceeded):
            cpu.run(asm.finish(), fuel=1000)

    def test_entry_by_label(self):
        asm = Assembler("entry")
        asm.mov(regs.rax, 1)
        asm.ret()
        asm.label("alt")
        asm.mov(regs.rax, 2)
        asm.ret()
        cpu = Cpu(Memory(), CpuConfig(timing=False))
        cpu.run(asm.finish(), entry="alt")
        assert cpu.get_gpr("rax") == 2


class TestAtomics:
    def test_xadd_fetch_add(self):
        mem = Memory()
        base, arr = mem.map_zeros(8)

        def body(a):
            a.mov(regs.rdi, Imm(base, 64))
            a.mov(regs.rsi, 128)
            a.xadd(Mem(regs.rdi, size=8), regs.rsi, lock=True)
            a.mov(regs.rsi, 128)
            a.xadd(Mem(regs.rdi, size=8), regs.rsi, lock=True)
        cpu, counters = run(body, memory=mem)
        assert cpu.get_gpr("rsi") == 128  # old value of second fetch-add
        assert mem.read_int(base, 8) == 256
        assert counters.atomic_ops == 2


class TestVectorOps:
    def test_vxorps_zeroes(self):
        def body(a):
            a.vxorps(zmm(3), zmm(3), zmm(3))
        cpu, _ = run(body)
        assert np.all(cpu.get_vec(zmm(3)) == 0)

    def test_broadcast_and_fma(self):
        mem = Memory()
        x = np.arange(16, dtype=np.float32)
        scalar = np.array([2.0], dtype=np.float32)
        xb = mem.map_array(x)
        sb = mem.map_array(scalar)

        def body(a):
            a.mov(regs.rax, Imm(xb, 64))
            a.mov(regs.rbx, Imm(sb, 64))
            a.vxorps(zmm(0), zmm(0), zmm(0))
            a.vbroadcastss(zmm(31), Mem(regs.rbx, size=4))
            a.vfmadd231ps(zmm(0), zmm(31), Mem(regs.rax, size=64))
        cpu, _ = run(body, memory=mem)
        assert np.allclose(cpu.get_vec(zmm(0)), 2.0 * x)

    def test_vmovups_store(self):
        mem = Memory()
        out = np.zeros(8, dtype=np.float32)
        src = np.arange(8, dtype=np.float32)
        ob = mem.map_array(out)
        sb = mem.map_array(src)

        def body(a):
            a.mov(regs.rax, Imm(sb, 64))
            a.mov(regs.rbx, Imm(ob, 64))
            a.vmovups(ymm(1), Mem(regs.rax, size=32))
            a.vmovups(Mem(regs.rbx, size=32), ymm(1))
        run(body, memory=mem)
        assert np.array_equal(out, src)

    def test_scalar_ss_ops(self):
        mem = Memory()
        vals = np.array([3.0, 4.0], dtype=np.float32)
        base = mem.map_array(vals)

        def body(a):
            a.mov(regs.rax, Imm(base, 64))
            a.vmovss(xmm(0), Mem(regs.rax, size=4))
            a.vmovss(xmm(1), Mem(regs.rax, disp=4, size=4))
            a.vmulss(xmm(2), xmm(0), xmm(1))
            a.vaddss(xmm(3), xmm(2), xmm(0))
        cpu, _ = run(body, memory=mem)
        assert cpu.get_vec(xmm(2))[0] == pytest.approx(12.0)
        assert cpu.get_vec(xmm(3))[0] == pytest.approx(15.0)

    def test_fma_scalar(self):
        mem = Memory()
        vals = np.array([2.0, 10.0], dtype=np.float32)
        base = mem.map_array(vals)

        def body(a):
            a.mov(regs.rax, Imm(base, 64))
            a.vxorps(xmm(4), xmm(4), xmm(4))
            a.vmovss(xmm(5), Mem(regs.rax, size=4))
            a.vfmadd231ss(xmm(4), xmm(5), Mem(regs.rax, disp=4, size=4))
        cpu, _ = run(body, memory=mem)
        assert cpu.get_vec(xmm(4))[0] == pytest.approx(20.0)

    def test_horizontal_reduction_sequence(self):
        # the reduction the AOT vectorizer emits: zmm -> scalar sum
        mem = Memory()
        data = np.arange(16, dtype=np.float32)
        base = mem.map_array(data)

        def body(a):
            a.mov(regs.rax, Imm(base, 64))
            a.vmovups(zmm(0), Mem(regs.rax, size=64))
            a.vextractf64x4(ymm(1), zmm(0), Imm(1))
            a.vaddps(ymm(0), ymm(0), ymm(1))
            a.vextractf128(xmm(1), ymm(0), Imm(1))
            a.vaddps(xmm(0), xmm(0), xmm(1))
            a.vhaddps(xmm(0), xmm(0), xmm(0))
            a.vhaddps(xmm(0), xmm(0), xmm(0))
        cpu, _ = run(body, memory=mem)
        assert cpu.get_vec(xmm(0))[0] == pytest.approx(data.sum())

    def test_gather(self):
        mem = Memory()
        table = np.arange(100, dtype=np.float32) * 10
        indices = np.array([5, 1, 7, 3, 0, 2, 9, 4], dtype=np.int32)
        tb = mem.map_array(table)
        ib = mem.map_array(indices)

        def body(a):
            a.mov(regs.rax, Imm(tb, 64))
            a.mov(regs.rbx, Imm(ib, 64))
            a.vmovdqu32(ymm(1), Mem(regs.rbx, size=32))
            a.vgatherdps(ymm(2), Mem(regs.rax, ymm(1), 4, 0, size=4))
        cpu, counters = run(body, memory=mem)
        assert np.array_equal(cpu.get_vec(ymm(2)), table[indices])
        assert counters.gather_elements == 8

    def test_int_vector_ops(self):
        mem = Memory()
        vals = np.arange(8, dtype=np.int32)
        scalar = np.array([3], dtype=np.int32)
        vb = mem.map_array(vals)
        sb = mem.map_array(scalar)

        def body(a):
            a.mov(regs.rax, Imm(vb, 64))
            a.mov(regs.rbx, Imm(sb, 64))
            a.vmovdqu32(ymm(0), Mem(regs.rax, size=32))
            a.vpbroadcastd(ymm(1), Mem(regs.rbx, size=4))
            a.vpmulld(ymm(2), ymm(0), ymm(1))
            a.vpaddd(ymm(3), ymm(2), ymm(0))
            a.vpslld(ymm(4), ymm(0), Imm(2))
        cpu, _ = run(body, memory=mem)
        i32 = cpu.vec_i32
        assert np.array_equal(i32[2, :8], vals * 3)
        assert np.array_equal(i32[3, :8], vals * 4)
        assert np.array_equal(i32[4, :8], vals << 2)


class TestCounting:
    def test_instruction_and_load_counts(self):
        mem = Memory()
        base = mem.map_array(np.arange(4, dtype=np.float32))

        def body(a):
            a.mov(regs.rax, Imm(base, 64))      # 1 insn
            a.vmovups(xmm(0), Mem(regs.rax, size=16))  # 1 insn, 1 load
            a.vmovss(xmm(1), Mem(regs.rax, size=4))    # 1 insn, 1 load
        _, counters = run(body, memory=mem)
        assert counters.instructions == 4  # + ret
        assert counters.memory_loads == 2
        assert counters.loaded_bytes == 20

    def test_counts_mode_matches_timing_mode(self):
        mem1, mem2 = Memory(), Memory()
        data1 = np.arange(64, dtype=np.float32)
        data2 = np.arange(64, dtype=np.float32)
        base1 = mem1.map_array(data1)
        base2 = mem2.map_array(data2)
        assert base1 == base2  # same layout

        def body(a):
            a.mov(regs.rax, Imm(base1, 64))
            a.mov(regs.rcx, 0)
            a.vxorps(zmm(0), zmm(0), zmm(0))
            a.label("loop")
            a.cmp(regs.rcx, 4)
            a.jge("done")
            a.mov(regs.rdx, regs.rcx)
            a.shl(regs.rdx, 6)
            a.vfmadd231ps(zmm(0), zmm(0), Mem(regs.rax, regs.rdx, 1, 0, size=64))
            a.inc(regs.rcx)
            a.jmp("loop")
            a.label("done")

        _, fast = run(body, timing=False, memory=mem1)
        _, slow = run(body, timing=True, memory=mem2)
        for key in ("instructions", "memory_loads", "branches", "branch_misses"):
            assert getattr(fast, key) == getattr(slow, key)
        assert fast.cycles == 0 and slow.cycles > 0
