"""repro.obs wired through serving, pipeline, codegen and simulator."""

import json
import threading

import numpy as np
import pytest

import repro
import repro.obs as obs
from repro.machine.replay import clear_flush_stats, flush_stats
from repro.serve import SpmmService
from tests.conftest import random_csr


@pytest.fixture
def traced():
    """Enable the process-wide tracer for one test, clean slate."""
    tracer = obs.enable_tracing()
    tracer.clear()
    yield tracer
    obs.disable_tracing()
    tracer.clear()


def _storm(service, handle, xs):
    """Issue one multiply per operand from concurrent threads."""
    barrier = threading.Barrier(len(xs))
    errors = []

    def run(index):
        barrier.wait()
        try:
            service.multiply(handle, xs[index])
        except BaseException as error:  # noqa: BLE001 - inspected below
            errors.append(error)

    threads = [threading.Thread(target=run, args=(index,))
               for index in range(len(xs))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


# ----------------------------------------------------------------------
# Span taxonomy across the stack
# ----------------------------------------------------------------------
class TestLifecycleSpans:
    def test_cold_multiply_emits_the_full_chain(self, rng, traced):
        service = SpmmService(threads=2, split="auto")
        matrix = random_csr(rng, 30, 30)
        handle = service.register(matrix, "traced")
        x = rng.random((30, 4)).astype(np.float32)
        service.multiply(handle, x)
        names = [r.name for r in traced.spans()]
        for expected in ("serve.register", "serve.multiply", "serve.bind",
                         "pipeline.bind", "autotune.choose_split",
                         "serve.codegen", "codegen.jit"):
            assert expected in names, expected
        # nested spans share the multiply root's trace id
        by_name = {r.name: r for r in traced.spans()}
        root = by_name["serve.multiply"]
        for nested in ("serve.bind", "serve.codegen", "codegen.jit"):
            assert by_name[nested].trace_id == root.trace_id

    def test_warm_multiply_emits_no_codegen_span(self, rng, traced):
        service = SpmmService(threads=2, split="row")
        matrix = random_csr(rng, 30, 30)
        handle = service.register(matrix)
        x = rng.random((30, 4)).astype(np.float32)
        service.multiply(handle, x)
        traced.clear()
        service.multiply(handle, x)
        names = [r.name for r in traced.spans()]
        assert "serve.multiply" in names
        assert "codegen.jit" not in names
        assert "serve.bind" not in names

    def test_profile_span_records_backend(self, rng, traced):
        service = SpmmService(threads=2, split="row")
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        x = rng.random((25, 4)).astype(np.float32)
        service.profile(handle, x, backend="counts")
        by_name = {r.name: r for r in traced.spans()}
        assert by_name["serve.profile"].attrs["backend"] == "counts"
        assert by_name["pipeline.execute"].attrs["backend"] == "counts"

    def test_unregister_span(self, rng, traced):
        service = SpmmService(threads=2, split="row")
        matrix = random_csr(rng, 20, 20)
        handle = service.register(matrix)
        service.unregister(handle)
        names = [r.name for r in traced.spans()]
        assert "serve.unregister" in names

    def test_api_run_emits_pipeline_spans(self, rng, traced):
        matrix = random_csr(rng, 20, 20)
        x = rng.random((20, 4)).astype(np.float32)
        repro.run(matrix, x, backend="counts", threads=2, split="row")
        names = [r.name for r in traced.spans()]
        assert "pipeline.bind" in names
        assert "pipeline.execute" in names


# ----------------------------------------------------------------------
# The coalescing protocol's trace: one batch id across leader+followers
# ----------------------------------------------------------------------
class TestBatchTrace:
    def test_burst_shares_one_batch_id(self, rng, traced):
        service = SpmmService(threads=2, split="row", max_batch=8,
                              flush_us=20000)
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        xs = [rng.random((25, 4)).astype(np.float32) for _ in range(6)]
        service.multiply(handle, xs[0])     # codegen off the trace
        traced.clear()
        assert not _storm(service, handle, xs)
        spans = traced.spans()
        executes = [r for r in spans if r.name == "serve.batch.execute"]
        waits = [r for r in spans if r.name == "serve.batch.wait"]
        assert executes
        # every request is accounted for: leaders execute, followers
        # wait (promoted waiters lead the next batch)
        served = sum(r.attrs["size"] for r in executes)
        assert served == len(xs)
        assert all(r.attrs["flush"] in ("full", "linger", "immediate")
                   for r in executes)
        batch_ids = {r.attrs["batch_id"] for r in executes}
        assert len(batch_ids) == len(executes)
        # each non-promoted wait span names the batch that served it
        # and the leader's trace id — the Perfetto join key
        for record in waits:
            if record.attrs.get("promoted"):
                continue
            assert record.attrs["batch_id"] in batch_ids
            leader = next(e for e in executes
                          if e.attrs["batch_id"] == record.attrs["batch_id"])
            assert record.attrs["leader_trace"] == leader.trace_id
        # at least one batch actually coalesced under the long linger
        assert max(r.attrs["size"] for r in executes) > 1

    def test_batch_ids_assigned_even_with_tracing_off(self, rng,
                                                      monkeypatch):
        assert not obs.tracing_enabled()
        service = SpmmService(threads=2, split="row", max_batch=8,
                              flush_us=300)
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        xs = [rng.random((25, 4)).astype(np.float32) for _ in range(5)]
        service.multiply(handle, xs[0])

        def boom(*args, **kwargs):
            raise RuntimeError("injected batch failure")

        import repro.serve.service as service_module
        monkeypatch.setattr(service_module, "multiply_partitioned", boom)
        errors = _storm(service, handle, xs)
        assert len(errors) == len(xs)
        for error in errors:
            assert isinstance(error.batch_id, int)
            assert error.batch_id >= 1
            assert error.trace_id == ""     # tracing was off

    def test_error_clones_carry_batch_id_and_leader_trace(self, rng,
                                                          traced,
                                                          monkeypatch):
        service = SpmmService(threads=2, split="row", max_batch=8,
                              flush_us=300)
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        xs = [rng.random((25, 4)).astype(np.float32) for _ in range(5)]
        service.multiply(handle, xs[0])

        def boom(*args, **kwargs):
            raise RuntimeError("injected batch failure")

        import repro.serve.service as service_module
        monkeypatch.setattr(service_module, "multiply_partitioned", boom)
        errors = _storm(service, handle, xs)
        assert len(errors) == len(xs)
        for error in errors:
            assert isinstance(error.batch_id, int)
            assert error.trace_id != ""
            if error.__cause__ is not None:     # a clone
                assert error.batch_id == error.__cause__.batch_id
        # members of one batch agree on the id
        by_batch = {}
        for error in errors:
            by_batch.setdefault(error.batch_id, []).append(error)
        for batch_errors in by_batch.values():
            assert len({e.trace_id for e in batch_errors}) == 1


# ----------------------------------------------------------------------
# Metrics: serving, autotune, simulator through one registry
# ----------------------------------------------------------------------
class TestUnifiedMetrics:
    def test_service_stats_flow_into_the_registry(self, rng):
        service = SpmmService(threads=2, split="row",
                              obs_label="metrics-test")
        matrix = random_csr(rng, 30, 30)
        handle = service.register(matrix)
        x = rng.random((30, 4)).astype(np.float32)
        for _ in range(3):
            service.multiply(handle, x)
        snap = obs.get_registry().snapshot()
        assert snap.value("serve_requests_total",
                          service="metrics-test") == 3
        assert snap.value("serve_backend_requests_total",
                          service="metrics-test", backend="native") == 3
        assert snap.value("serve_codegen_runs_total",
                          service="metrics-test") == 1
        assert snap.value("serve_handles", service="metrics-test") == 1
        assert snap.value("serve_cache_hits_total",
                          service="metrics-test") == 2

    def test_registry_matches_report_numbers(self, rng):
        service = SpmmService(threads=2, split="row",
                              obs_label="consistency")
        matrix = random_csr(rng, 30, 30)
        handle = service.register(matrix)
        x = rng.random((30, 4)).astype(np.float32)
        for _ in range(4):
            service.multiply(handle, x)
        snapshot = service.snapshot()
        assert "4 requests" in snapshot.render()
        samples = {s.name: s.value
                   for s in snapshot.metric_samples(service="consistency")
                   if not s.labels or len(s.labels) == 1}
        assert samples["serve_requests_total"] == 4

    def test_dropped_service_is_pruned_from_registry(self, rng):
        import gc

        service = SpmmService(threads=2, split="row",
                              obs_label="ephemeral-svc")
        matrix = random_csr(rng, 20, 20)
        handle = service.register(matrix)
        service.multiply(handle,
                         rng.random((20, 4)).astype(np.float32))
        snap = obs.get_registry().snapshot()
        assert snap.value("serve_requests_total",
                          service="ephemeral-svc") == 1
        del service, handle
        gc.collect()
        snap = obs.get_registry().snapshot()   # prunes the dead collector
        snap = obs.get_registry().snapshot()
        with pytest.raises(KeyError):
            snap.value("serve_requests_total", service="ephemeral-svc")

    def test_autotune_memo_stats_exported(self, rng):
        from repro.core.autotune import autotune_memo_stats, choose_split

        matrix = random_csr(rng, 40, 40)
        choose_split(matrix, 8, 4)
        choose_split(matrix, 8, 4)      # memo hit
        memo = autotune_memo_stats()
        snap = obs.get_registry().snapshot()
        assert snap.value("autotune_memo_hits_total") == memo["hits"]
        assert snap.value("autotune_memo_misses_total") == memo["misses"]
        assert snap.value("autotune_memo_entries") == memo["entries"]

    def test_simulated_run_counters_exported(self, rng):
        matrix = random_csr(rng, 20, 20)
        x = rng.random((20, 4)).astype(np.float32)
        result = repro.run(matrix, x, backend="counts", threads=2,
                           split="row")
        snap = obs.get_registry().snapshot()
        assert snap.value("sim_instructions_total",
                          backend="counts") >= result.counters.instructions

    def test_replay_flush_stats_exported(self, rng):
        clear_flush_stats()
        matrix = random_csr(rng, 20, 20)
        x = rng.random((20, 4)).astype(np.float32)
        repro.run(matrix, x, backend="sim-fused", threads=2, split="row")
        stats = flush_stats()
        assert stats["flushes"] >= 1
        assert stats["replayed_units"] >= 1
        snap = obs.get_registry().snapshot()
        assert snap.value("sim_replay_flushes_total") == stats["flushes"]
        assert snap.value("sim_replay_replayed_events_total") == (
            stats["replayed_events"])

    def test_prometheus_text_covers_the_stack(self, rng):
        service = SpmmService(threads=2, split="row", obs_label="prom")
        matrix = random_csr(rng, 20, 20)
        handle = service.register(matrix)
        service.multiply(handle,
                         rng.random((20, 4)).astype(np.float32))
        text = obs.prometheus_text()
        assert 'serve_requests_total{service="prom"} 1' in text
        assert "# TYPE serve_requests_total counter" in text
        assert "autotune_memo_entries" in text

    def test_prometheus_text_covers_tiered_serving(self, rng, traced):
        service = SpmmService(threads=2, split="auto", obs_label="tierprom",
                              tier_mode="lazy", promote_after=2)
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        x = rng.random((25, 4)).astype(np.float32)
        service.multiply(handle, x)
        service.multiply(handle, x)
        assert service.drain_promotions(10.0)
        service.multiply(handle, x)
        text = obs.prometheus_text()
        assert ('serve_tier_traffic_total{service="tierprom",'
                'tier="template"} 2') in text
        assert ('serve_tier_traffic_total{service="tierprom",'
                'tier="promoted"} 1') in text
        assert ('serve_tier_promotions_total{outcome="promoted",'
                'service="tierprom"} 1') in text
        # zero-valued outcome buckets are exported too (rate() needs
        # the series to exist before the first failure)
        assert ('serve_tier_promotions_total{outcome="failed",'
                'service="tierprom"} 0') in text
        assert 'serve_tier_promotions_pending{service="tierprom"} 0' in text
        assert "serve_tier_codegen_seconds_total" in text
        # the background promotion leaves a first-class span
        promotes = [r for r in traced.spans() if r.name == "serve.promote"]
        assert len(promotes) == 1
        assert promotes[0].attrs["outcome"] == "promoted"
        assert promotes[0].attrs["codegen_seconds"] >= 0.0


# ----------------------------------------------------------------------
# End to end: traced burst -> Perfetto artifact
# ----------------------------------------------------------------------
class TestTraceArtifact:
    def test_burst_trace_exports_loadable_json(self, rng, traced,
                                               tmp_path):
        service = SpmmService(threads=2, split="row", max_batch=4,
                              flush_us=5000)
        matrix = random_csr(rng, 25, 25)
        handle = service.register(matrix)
        xs = [rng.random((25, 4)).astype(np.float32) for _ in range(6)]
        assert not _storm(service, handle, xs)
        path = obs.write_chrome_trace(str(tmp_path / "burst.json"))
        document = json.loads(open(path).read())
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert "serve.batch.execute" in names
        assert "serve.multiply" in names
        # per-thread monotonic timestamps (Perfetto's requirement)
        by_tid = {}
        for event in events:
            by_tid.setdefault(event["tid"], []).append(event["ts"])
        for stamps in by_tid.values():
            assert stamps == sorted(stamps)
